"""The crash-consistency fuzzing harness.

One *case* = one seeded random program plus one adversarial failure
schedule, run across the oracle matrix:

* the **ideal** architecture uninterrupted — a cross-check that the
  cache/bloom machinery itself preserves semantics (ideal is a
  measurement device, not crash-consistent, so it serves as the
  continuously-powered baseline rather than an injection target);
* **nvmr** and **clank** under the adversarial schedule, alternating
  the jit/watchdog policies and the fast/reference engines, with the
  :class:`~repro.verify.oracles.CrashConsistencyMonitor` installed;
* periodically, a **differential** run — the same nvmr case on both
  engines, whose entire RunResult must match bit for bit — and an
  **exhaustive sweep** of single-fault schedules over an instruction
  window.

On failure the harness *shrinks*: first the schedule (empty, then
single-fault, then greedy removal), then the program (iteration
reduction and ddmin-style unit removal), re-running the failing
configuration each time, and writes a replayable ``artifacts/repro_*.s``
reproducer with the full configuration in its metadata header.
"""

import json
import os
import random
from dataclasses import dataclass, field, replace

from repro.asm import assemble
from repro.energy.faultinject import AdversarialSource
from repro.persist.checker import ViolationRecord
from repro.sim.platform import Platform, PlatformConfig, SimulationError
from repro.sim.reference import run_reference
from repro.verify.oracles import (
    CrashConsistencyMonitor,
    InvariantViolation,
    check_final_state,
)
from repro.verify.progen import generate_asm_spec, generate_minicc_spec

#: Big enough that the capacitor never browns out on its own: failures
#: come only from the injected schedule.
_INJECTOR_CAPACITOR_NJ = 1e9
#: Bound for one intermittent run (generated programs retire ~1e3-1e4).
_MAX_STEPS = 400_000
_REFERENCE_MAX_STEPS = 500_000

#: Structure rotation: tiny caches/tables force evictions, structural
#: backups, reclamation and free-list churn on small programs.
_STRUCTURES = (
    {},
    dict(cache_size=64, cache_assoc=2, mtc_entries=8, mtc_assoc=2,
         map_table_entries=16, free_list_size=6),
    dict(cache_size=32, cache_assoc=1, mtc_entries=4, mtc_assoc=2,
         map_table_entries=3),
    dict(cache_size=64, cache_assoc=2, map_table_entries=4, reclaim=False),
)


@dataclass(frozen=True)
class RunPlan:
    """One (architecture, policy, engine, schedule, structures) cell."""

    arch: str
    policy: str
    fast: bool
    schedule: tuple = ()
    structures: dict = field(default_factory=dict)
    #: Tuned policy-constructor kwargs (e.g. a swept watchdog period),
    #: so sweep-tuned thresholds run through the same oracle matrix.
    policy_kwargs: dict = field(default_factory=dict)

    @property
    def engine(self):
        return "fast" if self.fast else "reference"


@dataclass
class FuzzFailure:
    """One confirmed oracle failure, with its shrunk reproducer."""

    case: int
    seed: int
    plan: RunPlan
    record: ViolationRecord
    spec: object
    shrunk_spec: object = None
    shrunk_schedule: tuple = None
    shrunk_record: ViolationRecord = None
    reproducer: str = None
    instructions: int = None

    def summary(self):
        where = f"case {self.case} [{self.plan.arch}/{self.plan.policy}/{self.plan.engine}]"
        size = (
            f", shrunk to {self.instructions} instructions"
            if self.instructions is not None
            else ""
        )
        return f"{where}: {self.record.kind}: {self.record.detail}{size}"


@dataclass
class FuzzSummary:
    """Outcome of a :func:`run_fuzz` campaign."""

    cases: int
    runs: int
    failures: list

    @property
    def ok(self):
        return not self.failures


def _make_config(plan):
    return PlatformConfig(
        arch=plan.arch,
        policy=plan.policy,
        capacitor_energy=_INJECTOR_CAPACITOR_NJ,
        watchdog_period=700,
        policy_kwargs=dict(plan.policy_kwargs),
        max_steps=_MAX_STEPS,
        fast=plan.fast,
        **plan.structures,
    )


def _finish_plan(platform, base, expected, monitored):
    """Run an already-built platform through the oracle matrix.

    Returns ``(record-or-None, RunResult-or-None)``; the result is only
    available when no oracle fired.
    """
    if monitored:
        CrashConsistencyMonitor(platform, base, words=len(expected))
    try:
        result = platform.run()
    except InvariantViolation as exc:
        return exc.record, None
    except SimulationError as exc:
        return ViolationRecord(kind="no-progress", detail=str(exc)), None
    return check_final_state(platform, base, expected), result


def run_single(program, plan, expected, base, words):
    """Run one plan; returns a :class:`ViolationRecord` or None.

    The monitor is installed on every injection target; ``ideal`` runs
    bare (it is not crash-consistent by design and only ever runs
    uninterrupted, as the baseline cross-check).
    """
    platform = Platform(
        program,
        _make_config(plan),
        trace=AdversarialSource(plan.schedule),
        benchmark_name="verify-fuzz",
    )
    record, _result = _finish_plan(
        platform, base, expected, monitored=plan.arch != "ideal"
    )
    return record


def _replay_eligible(plan):
    """Whether the replayer would serve this plan (mirror of
    :func:`repro.sim.replay.replay_supported`, minus the env knob —
    the fuzzer cross-checks replay even when sweeps have it off)."""
    return plan.fast and plan.arch != "ideal"


def run_replay_cross_check(program, plan, expected, base, words, image):
    """Run one plan on the simulator *and* the replayer; divergence fails.

    The same adversarial schedule drives both runs (through fresh
    :class:`AdversarialSource` instances), with the crash-consistency
    monitor installed on both.  The oracle verdicts must agree exactly;
    on clean runs the full RunResult (every energy float bit for bit),
    the event-log length and the final raw NVM image must also match.
    Returns the simulator's own verdict when both sides agree on a
    genuine violation, a ``replay-divergence`` record when they
    disagree, or None.
    """
    from repro.sim.replay import ReplayPlatform

    sim = Platform(
        program,
        _make_config(plan),
        trace=AdversarialSource(plan.schedule),
        benchmark_name="verify-fuzz",
    )
    sim_record, sim_result = _finish_plan(sim, base, expected, monitored=True)

    rep = ReplayPlatform(
        program,
        image,
        _make_config(plan),
        trace=AdversarialSource(plan.schedule),
        benchmark_name="verify-fuzz",
    )
    rep_record, rep_result = _finish_plan(rep, base, expected, monitored=True)

    def _verdict(record):
        return (record.kind, record.detail) if record is not None else None

    if _verdict(sim_record) != _verdict(rep_record):
        return ViolationRecord(
            kind="replay-divergence",
            detail=(
                f"oracle verdicts diverge: simulator={_verdict(sim_record)!r} "
                f"replay={_verdict(rep_record)!r}"
            ),
        )
    if sim_record is not None:
        return sim_record
    for name in sim_result.__dataclass_fields__:
        if getattr(rep_result, name) != getattr(sim_result, name):
            return ViolationRecord(
                kind="replay-divergence",
                detail=(
                    f"RunResult.{name} diverges: "
                    f"simulator={getattr(sim_result, name)!r} "
                    f"replay={getattr(rep_result, name)!r}"
                ),
            )
    if len(rep.events) != len(sim.events):
        return ViolationRecord(
            kind="replay-divergence",
            detail="platform event-log length diverges under replay",
        )
    if rep.nvm._words != sim.nvm._words:
        return ViolationRecord(
            kind="replay-divergence",
            detail="final raw NVM image diverges under replay",
        )
    return None


#: Two natural-power regimes for the compiled cross-check.  The harsh
#: capacitor browns out mid-epoch constantly — generated programs
#: usually cannot finish, but every re-execution breaks a precompiled
#: span at a different step, sweeping the chunk-boundary logic — while
#: the moderate one lets programs complete (final-state oracle) with a
#: brown-out or two along the way.
_HARSH_CAPACITOR_NJ = 60.0
_BROWNOUT_CAPACITOR_NJ = 2000.0
#: Step bound for the harsh regime (a no-progress loop re-executes the
#: same short program thousands of times; cap the cost per case).
_CROSS_CHECK_MAX_STEPS = 60_000


def run_compiled_power_cross_check(
    program, plan, expected, base, words, image, trace_seed,
    capacitor_nj=_BROWNOUT_CAPACITOR_NJ,
):
    """Scalar vs compiled replay under *natural* power failures.

    Adversarial injection disables quantum windows entirely, so the
    injected cross-checks above never reach the compiled epoch executor
    (:mod:`repro.sim.epochs`).  This check instead drives both replay
    modes with a harvested-energy trace and a deliberately small
    capacitor: quantum windows engage, precompiled epochs break on real
    brown-outs mid-span, and the two executors must agree on every
    oracle verdict, RunResult field, event count and final NVM word.
    An *agreed* ``no-progress`` verdict is clean — a legitimate outcome
    under harsh power, not a bug — but any one-sided verdict or bit of
    divergence (including divergent final state behind an identical
    error message) is a ``replay-divergence`` failure.
    """
    from repro.energy.traces import HarvestTrace
    from repro.sim.replay import ReplayPlatform

    config = replace(
        _make_config(plan),
        capacitor_energy=capacitor_nj,
        max_steps=_CROSS_CHECK_MAX_STEPS,
    )
    outcomes = {}
    for compiled in (False, True):
        platform = ReplayPlatform(
            program,
            image,
            config,
            trace=HarvestTrace(trace_seed),
            benchmark_name="verify-fuzz",
            compiled=compiled,
        )
        record, result = _finish_plan(
            platform, base, expected, monitored=True
        )
        outcomes[compiled] = (record, result, platform)
    sca_record, sca_result, sca_plat = outcomes[False]
    com_record, com_result, com_plat = outcomes[True]

    def _verdict(record):
        return (record.kind, record.detail) if record is not None else None

    if _verdict(sca_record) != _verdict(com_record):
        return ViolationRecord(
            kind="replay-divergence",
            detail=(
                f"oracle verdicts diverge under harvested power: "
                f"scalar={_verdict(sca_record)!r} "
                f"compiled={_verdict(com_record)!r}"
            ),
        )
    # Compare observable platform state even when both runs died the
    # same way: two no-progress verdicts with identical messages can
    # still hide divergent execution, but not divergent NVM images.
    if len(com_plat.events) != len(sca_plat.events):
        return ViolationRecord(
            kind="replay-divergence",
            detail="event-log length diverges between replay modes",
        )
    if com_plat.nvm._words != sca_plat.nvm._words:
        return ViolationRecord(
            kind="replay-divergence",
            detail="final raw NVM image diverges between replay modes",
        )
    if sca_record is not None:
        return None if sca_record.kind == "no-progress" else sca_record
    for name in sca_result.__dataclass_fields__:
        if getattr(com_result, name) != getattr(sca_result, name):
            return ViolationRecord(
                kind="replay-divergence",
                detail=(
                    f"RunResult.{name} diverges between replay modes: "
                    f"scalar={getattr(sca_result, name)!r} "
                    f"compiled={getattr(com_result, name)!r}"
                ),
            )
    return None


def run_differential(program, plan, expected, base, words):
    """Run one plan on both engines; any observable divergence fails.

    The full RunResult (energy floats bit for bit, every counter), the
    event-log length and every final NVM word must match.
    """
    outcomes = []
    for fast in (False, True):
        engine_plan = replace(plan, fast=fast)
        platform = Platform(
            program,
            _make_config(engine_plan),
            trace=AdversarialSource(plan.schedule),
            benchmark_name="verify-fuzz",
        )
        CrashConsistencyMonitor(platform, base, words)
        try:
            result = platform.run()
        except InvariantViolation as exc:
            return exc.record
        except SimulationError as exc:
            return ViolationRecord(kind="no-progress", detail=str(exc))
        record = check_final_state(platform, base, expected)
        if record is not None:
            return record
        outcomes.append((result, platform))
    (ref_result, ref_platform), (fast_result, fast_platform) = outcomes
    for name in ref_result.__dataclass_fields__:
        if getattr(fast_result, name) != getattr(ref_result, name):
            return ViolationRecord(
                kind="fastpath-divergence",
                detail=(
                    f"RunResult.{name} diverges under injection: "
                    f"reference={getattr(ref_result, name)!r} "
                    f"fast={getattr(fast_result, name)!r}"
                ),
            )
    if len(fast_platform.events) != len(ref_platform.events):
        return ViolationRecord(
            kind="fastpath-divergence",
            detail="platform event-log length diverges between engines",
        )
    if fast_platform.nvm._words != ref_platform.nvm._words:
        return ViolationRecord(
            kind="fastpath-divergence",
            detail="final raw NVM image diverges between engines",
        )
    return None


# --------------------------------------------------------------- cases
def _random_schedule(rng, reference_instructions):
    """A small adversarial schedule biased at plausible boundaries."""
    horizon = max(2, reference_instructions)
    faults = []
    for _ in range(rng.randrange(1, 4)):
        faults.append(("step", rng.randrange(1, horizon + 1)))
    if rng.random() < 0.5:
        faults.append(("backup", rng.randrange(1, 5)))
    if rng.random() < 0.35:
        faults.append(("restore", rng.randrange(1, 3)))
    return tuple(sorted(set(faults)))


def _tuned(policy, overrides):
    """The tuned kwargs for one policy (empty dict when untouched)."""
    return dict((overrides or {}).get(policy, {}))


def _case_plans(case, rng, schedule, policy_overrides=None):
    """The run matrix for one case (ideal baseline + injected targets)."""
    structures = dict(_STRUCTURES[case % len(_STRUCTURES)])
    nvmr_policy, clank_policy = (
        ("watchdog", "jit") if case % 2 == 0 else ("jit", "watchdog")
    )
    nvmr_fast = case % 2 == 0
    plans = [
        RunPlan("ideal", "watchdog", fast=not nvmr_fast,
                policy_kwargs=_tuned("watchdog", policy_overrides)),
        RunPlan("nvmr", nvmr_policy, nvmr_fast, schedule, structures,
                _tuned(nvmr_policy, policy_overrides)),
        RunPlan(
            "clank",
            clank_policy,
            not nvmr_fast,
            _random_schedule(rng, max(2, len(schedule)) * 50),
            {k: v for k, v in structures.items()
             if k in ("cache_size", "cache_assoc")},
            _tuned(clank_policy, policy_overrides),
        ),
    ]
    return plans


def run_case(case, seed, policy_overrides=None):
    """Run one fuzz case; returns (runs_performed, failure-or-None).

    ``policy_overrides`` maps policy name to tuned constructor kwargs
    (``{"watchdog": {"period": 350}}``) so sweep-tuned thresholds face
    the same adversarial schedules and invariant oracles as the
    defaults.
    """
    rng = random.Random((seed << 24) ^ (case * 0x9E3779B1) & 0xFFFFFFFF)
    if case % 4 == 3:
        spec = generate_minicc_spec(rng.randrange(1 << 30))
    else:
        spec = generate_asm_spec(rng.randrange(1 << 30))
    program = spec.program()
    reference = run_reference(program, max_steps=_REFERENCE_MAX_STEPS)
    base, words = spec.tracked(program)
    expected = reference.words_at(base, words)
    schedule = _random_schedule(rng, reference.instructions)

    runs = 0
    image = None
    for plan in _case_plans(case, rng, schedule, policy_overrides):
        runs += 1
        if _replay_eligible(plan):
            # Every fast-engine plan doubles as a replayer cross-check:
            # the case's trace is recorded once (in memory — fuzz
            # programs never touch the shared trace store) and the
            # replayed run must agree with the simulated one on every
            # oracle verdict, result field and final NVM word.
            if image is None:
                from repro.sim.trace import ReplayImage, record_trace

                image = ReplayImage(program, record_trace(program))
            runs += 1
            record = run_replay_cross_check(
                program, plan, expected, base, words, image
            )
        else:
            record = run_single(program, plan, expected, base, words)
        if record is not None:
            return runs, FuzzFailure(case, seed, plan, record, spec)

    structures = dict(_STRUCTURES[case % len(_STRUCTURES)])
    watchdog_kwargs = _tuned("watchdog", policy_overrides)
    if case % 4 == 1:
        # Compiled-epoch cross-check under harvested power: injection
        # disables quantum windows, so this is the only place the fuzzer
        # exercises repro.sim.epochs against real mid-span brown-outs.
        # Watchdog only — its cycle-budget guard keeps windows open
        # under harsh power, where jit pre-emptively shuts down before
        # a guard ever engages.  Alternate the two capacitor regimes.
        if image is None:
            from repro.sim.trace import ReplayImage, record_trace

            image = ReplayImage(program, record_trace(program))
        capacitor_nj = (
            _HARSH_CAPACITOR_NJ
            if (case >> 2) % 2 == 0
            else _BROWNOUT_CAPACITOR_NJ
        )
        plan = RunPlan(
            "nvmr" if (case >> 2) % 2 == 0 else "clank", "watchdog", True,
            (), structures, watchdog_kwargs,
        )
        runs += 2
        record = run_compiled_power_cross_check(
            program, plan, expected, base, words, image,
            trace_seed=(seed << 8) ^ case, capacitor_nj=capacitor_nj,
        )
        if record is not None:
            return runs, FuzzFailure(case, seed, plan, record, spec)
    if case % 8 == 0:
        # Differential: same schedule, both engines, full bit-identity.
        plan = RunPlan(
            "nvmr", "watchdog", True, schedule, structures, watchdog_kwargs
        )
        runs += 2
        record = run_differential(program, plan, expected, base, words)
        if record is not None:
            return runs, FuzzFailure(case, seed, plan, record, spec)
    if case % 16 == 4:
        # Exhaustive single-fault sweep over an instruction window.
        start = rng.randrange(1, max(2, reference.instructions))
        for n in range(start, start + 8):
            plan = RunPlan(
                "nvmr", "watchdog", case % 2 == 0, (("step", n),),
                structures, watchdog_kwargs,
            )
            runs += 1
            record = run_single(program, plan, expected, base, words)
            if record is not None:
                return runs, FuzzFailure(case, seed, plan, record, spec)
    return runs, None


# ------------------------------------------------------------- shrinking
def shrink_failure(failure, budget=250):
    """Minimize the failing (program, schedule) pair.

    Re-runs the exact failing configuration after each candidate edit;
    a candidate is kept only if *some* oracle still fails.  ``budget``
    bounds the number of re-runs so shrinking always terminates fast.
    """
    spec = failure.spec
    plan = failure.plan
    program_cache = {}
    remaining = [budget]

    def attempt(candidate_spec, schedule):
        if remaining[0] <= 0:
            return None
        remaining[0] -= 1
        key = (candidate_spec, schedule)
        if key in program_cache:
            return program_cache[key]
        try:
            program = candidate_spec.program()
            reference = run_reference(program, max_steps=_REFERENCE_MAX_STEPS)
            base, words = candidate_spec.tracked(program)
            expected = reference.words_at(base, words)
            record = run_single(
                program, replace(plan, schedule=schedule), expected, base, words
            )
        except Exception:
            record = None  # a candidate that errors out is not a shrink
        program_cache[key] = record
        return record

    schedule = tuple(plan.schedule)
    best_record = failure.record

    # --- schedule minimization: empty, single fault, greedy removal
    record = attempt(spec, ())
    if record is not None:
        schedule, best_record = (), record
    elif len(schedule) > 1:
        for fault in schedule:
            record = attempt(spec, (fault,))
            if record is not None:
                schedule, best_record = (fault,), record
                break
        else:
            keep = list(schedule)
            i = 0
            while i < len(keep):
                candidate = tuple(keep[:i] + keep[i + 1 :])
                record = attempt(spec, candidate) if candidate else None
                if record is not None:
                    keep, best_record = list(candidate), record
                else:
                    i += 1
            schedule = tuple(keep)

    # --- program minimization: iterations first (largest win), then
    # ddmin-style unit removal, repeated to fixpoint.
    changed = True
    while changed and remaining[0] > 0:
        changed = False
        for iterations in (1, 2, 4):
            if iterations < spec.iterations:
                candidate = spec.with_iterations(iterations)
                record = attempt(candidate, schedule)
                if record is not None:
                    spec, best_record, changed = candidate, record, True
                    break
        chunk = max(1, len(spec.units) // 2)
        while chunk >= 1 and remaining[0] > 0:
            i = 0
            while i < len(spec.units):
                units = list(spec.units)
                candidate_units = units[:i] + units[i + chunk :]
                if candidate_units:
                    candidate = spec.with_units(tuple(candidate_units))
                    record = attempt(candidate, schedule)
                    if record is not None:
                        spec, best_record, changed = candidate, record, True
                        continue  # re-test at the same position
                i += chunk
            chunk //= 2

    failure.shrunk_spec = spec
    failure.shrunk_schedule = schedule
    failure.shrunk_record = best_record
    failure.instructions = len(spec.program().instructions)
    return failure


# ------------------------------------------------------------ reproducers
_META_PREFIX = "; verify-fuzz-meta: "


def write_reproducer(failure, directory="artifacts"):
    """Write the shrunk failure as a replayable ``repro_*.s`` file."""
    os.makedirs(directory, exist_ok=True)
    spec = failure.shrunk_spec or failure.spec
    schedule = (
        failure.shrunk_schedule
        if failure.shrunk_schedule is not None
        else failure.plan.schedule
    )
    record = failure.shrunk_record or failure.record
    meta = {
        "case": failure.case,
        "seed": failure.seed,
        "arch": failure.plan.arch,
        "policy": failure.plan.policy,
        "engine": failure.plan.engine,
        "structures": failure.plan.structures,
        "policy_kwargs": failure.plan.policy_kwargs,
        "schedule": [list(fault) for fault in schedule],
        "tracked": list(spec.tracked(spec.program())),
        "oracle": record.kind,
        "detail": record.detail,
        "generator": spec.describe(),
    }
    if spec.kind == "minicc":
        body = spec.lowered_asm()
        source_comment = "".join(
            f"; mini-C| {line}\n" for line in spec.render().splitlines()
        )
    else:
        body = spec.render()
        source_comment = ""
    path = os.path.join(
        directory, f"repro_{failure.seed}_{failure.case}_{failure.plan.arch}.s"
    )
    with open(path, "w") as handle:
        handle.write("; crash-consistency fuzzer reproducer\n")
        handle.write(_META_PREFIX + json.dumps(meta) + "\n")
        handle.write(source_comment)
        handle.write(body)
        if not body.endswith("\n"):
            handle.write("\n")
    failure.reproducer = path
    return path


def replay_reproducer(path):
    """Re-run a reproducer file; returns (meta, ViolationRecord-or-None)."""
    with open(path) as handle:
        text = handle.read()
    meta = None
    for line in text.splitlines():
        if line.startswith(_META_PREFIX):
            meta = json.loads(line[len(_META_PREFIX) :])
            break
    if meta is None:
        raise ValueError(f"{path}: missing '{_META_PREFIX.strip()}' header")
    program = assemble(text)
    plan = RunPlan(
        arch=meta["arch"],
        policy=meta["policy"],
        fast=meta["engine"] == "fast",
        schedule=tuple(tuple(fault) for fault in meta["schedule"]),
        structures=dict(meta["structures"]),
        # Absent in pre-tuning reproducers: default to untuned.
        policy_kwargs=dict(meta.get("policy_kwargs", {})),
    )
    base, words = meta["tracked"]
    reference = run_reference(program, max_steps=_REFERENCE_MAX_STEPS)
    expected = reference.words_at(base, words)
    return meta, run_single(program, plan, expected, base, words)


# -------------------------------------------------------------- campaign
def run_fuzz(
    cases=200,
    seed=0,
    artifacts_dir="artifacts",
    max_failures=5,
    shrink=True,
    progress=None,
    policy_overrides=None,
):
    """Run a fuzzing campaign; returns a :class:`FuzzSummary`.

    ``policy_overrides`` (``{policy: {kwarg: value}}``) tunes the
    policies the case matrix instantiates — the CLI's ``--tune
    policy.param=value`` — so swept thresholds get fuzzed too.
    """
    failures = []
    total_runs = 0
    for case in range(cases):
        runs, failure = run_case(case, seed, policy_overrides)
        total_runs += runs
        if failure is not None:
            if shrink:
                shrink_failure(failure)
            write_reproducer(failure, artifacts_dir)
            failures.append(failure)
            if progress:
                progress(f"FAIL {failure.summary()} -> {failure.reproducer}")
            if len(failures) >= max_failures:
                break
        elif progress and (case + 1) % 50 == 0:
            progress(f"{case + 1}/{cases} cases clean ({total_runs} runs)")
    return FuzzSummary(cases=case + 1 if cases else 0, runs=total_runs,
                       failures=failures)
