"""Golden-artifact regression for the Pareto sweep pipeline.

A small committed artifact (``golden_pareto_watchdog.json``, produced at
smoke scale) pins the artifact schema, the reduced result shape, and the
renderer's exact output.  Every assertion here runs with the simulator
monkeypatched to raise: the whole render path must work from the
artifact alone.  Regenerate the pair with::

    PYTHONPATH=src python -m repro experiment pareto_watchdog --smoke \
        --artifacts tests/analysis
    # then rename to golden_pareto_watchdog.{json,txt}

if the artifact format, the sweep grids, or the renderer change on
purpose.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    ExperimentSettings,
    get_experiment,
    load_artifact,
    render_artifact,
    write_artifact,
)
from repro.analysis.pareto import TUNED_POLICIES

HERE = Path(__file__).parent
GOLDEN_JSON = HERE / "golden_pareto_watchdog.json"
GOLDEN_TXT = HERE / "golden_pareto_watchdog.txt"


@pytest.fixture(autouse=True)
def _no_simulation(monkeypatch):
    """Everything below must run from the committed artifact alone."""

    def _refuse(benchmark, config, trace_seed):
        raise AssertionError(
            f"golden-artifact test tried to simulate {benchmark}"
        )

    monkeypatch.setattr(engine, "_simulate", _refuse)


def test_golden_artifact_loads_and_describes_itself():
    artifact = load_artifact(GOLDEN_JSON)
    assert artifact["experiment"] == "pareto_watchdog"
    assert artifact["title"].startswith("Pareto sweep: watchdog")
    result = artifact["result"]
    assert result["arch"] == "nvmr"
    assert result["objectives"] == ["energy_uj", "kcycles"]
    assert result["policies"] == ["watchdog"]
    assert "watchdog" in TUNED_POLICIES
    for tech in result["technologies"]:
        rows = result["candidates"][tech]
        assert rows, f"no candidates recorded for {tech}"
        labels = [row["label"] for row in rows]
        front = result["fronts"][tech]
        assert front and set(front) <= set(labels)
        for row in rows:
            lo, hi = row["energy_ci"]
            assert lo <= row["energy_uj"] <= hi
            lo, hi = row["kcycles_ci"]
            assert lo <= row["kcycles"] <= hi


def test_golden_artifact_rerenders_byte_identically():
    assert render_artifact(GOLDEN_JSON) == GOLDEN_TXT.read_text()


def test_golden_artifact_rewrites_byte_identically(tmp_path):
    artifact = load_artifact(GOLDEN_JSON)
    spec = get_experiment(artifact["experiment"])
    settings = ExperimentSettings(**artifact["settings"])
    write_artifact(spec, settings, artifact["result"], tmp_path)
    rewritten = tmp_path / GOLDEN_JSON.name.replace("golden_", "")
    assert rewritten.read_bytes() == GOLDEN_JSON.read_bytes()


def test_golden_artifact_is_canonical_json():
    # The committed document itself round-trips through json with the
    # writer's formatting — guards against hand edits drifting from
    # what write_artifact would produce.
    data = json.loads(GOLDEN_JSON.read_text())
    assert data["schema"] == engine.ARTIFACT_SCHEMA
    assert data["version"] == engine.ARTIFACT_VERSION
