"""Section 6.5: NvMR's overheads.

Paper: renaming+reclaiming energy ~3% of NvMR's total; 185x fewer
backups on average; maximum per-location NVM write count reduced by
80.8% vs Clank; map-table cache ~6% on-chip area overhead; reserved
region ~6% of the 2 MB flash.

This harness is a view over the experiment registry (``overheads``
spec).
"""

from conftest import run_spec


def test_overheads(benchmark, settings, report):
    out = run_spec(benchmark, "overheads", settings, report)
    # Wear: renaming spreads hot writes over the reserved region.
    assert out["max_wear_reduction_percent"] > 20.0
    # Backups drop by a large factor (paper: 185x; shape: >2x here).
    assert out["backup_reduction_factor"] > 2.0
    # Renaming energy stays a modest share of the total.
    assert out["renaming_energy_share_percent"] < 25.0
    # Area: ~6% MTC overhead; reserved region ~6% of flash (paper).
    assert 3.0 < out["mtc_area_overhead_percent"] < 10.0
    assert 2.0 < out["reserved_region_percent_of_flash"] < 8.0
