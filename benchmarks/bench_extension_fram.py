"""Extension study: NVM technology (paper footnote 8).

The paper evaluates on flash because it is "the most commonly found NVM
on commercial MCU boards", noting that FRAM consumes three orders of
magnitude less write energy.  This extension quantifies the
consequence: with cheap writes, backups are cheap, so NvMR's
backup-avoidance buys almost nothing — renaming is a *flash-era*
optimisation (and a wear-levelling one; FRAM endurance is also far
higher).

This harness is a view over the experiment registry (``ext_fram``
spec).
"""

from conftest import run_spec


def test_extension_nvm_technology(benchmark, settings, report):
    series = run_spec(benchmark, "ext_fram", settings, report)
    # The headline shape: NvMR's advantage is large on flash and nearly
    # vanishes on FRAM.
    assert series["flash"] > 10.0
    assert series["fram"] < series["flash"] / 3
