"""Table 3: idempotency violations per benchmark (ideal architecture, JIT).

Paper values (full-size MiBench/PERFECT inputs) range from 2.61e3 (hist)
to 2.87e6 (basicmath).  Our inputs are scaled for a cycle-level Python
simulator, so absolute counts are smaller; the property that carries is
that violation counts differ by orders of magnitude across benchmarks
and predict where NvMR saves energy (Figure 10).
"""

from repro.analysis import format_series, table3_violations

from conftest import run_once


def test_table3_violations(benchmark, settings, report):
    counts = run_once(benchmark, table3_violations, settings)
    report(
        "table3_violations",
        format_series(
            "Table 3: idempotency violations per benchmark (ideal arch, JIT)",
            counts,
            value_format="{:,.0f}",
        ),
    )
    assert all(count >= 0 for count in counts.values())
    # Violation-heavy vs violation-light benchmarks must separate.
    assert counts["qsort"] > counts["basicmath"]
