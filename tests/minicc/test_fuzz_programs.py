"""Compiler fuzzing: random statement-level programs vs a Python mirror.

Generates small mini-C programs (loops, conditionals, array traffic,
function calls) together with an equivalent Python closure, compiles
and runs them on TinyRISC, and compares the final output array.  This
exercises codegen paths (control flow, frame layout, spilling) that
expression-level fuzzing cannot reach.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.minicc import compile_minic
from repro.sim.reference import run_reference
from repro.workloads.csem import sdiv, w32

ARRAY = 12


class _ProgramBuilder:
    """Builds a mini-C body and an equivalent Python interpreter."""

    def __init__(self, rng):
        self.rng = rng
        self.c_lines = []
        self.py_ops = []  # list of callables mutating (env, arr)
        self.depth = 0

    # --------------------------------------------------------- pieces
    def _value(self):
        """A small expression over scalars a,b,c: returns (c_src, fn)."""
        choice = self.rng.randrange(4)
        if choice == 0:
            const = self.rng.randrange(-20, 90)
            return (f"({const})" if const >= 0 else f"(0 - {-const})"), (
                lambda env, arr, k=const: k
            )
        var = self.rng.choice("abc")
        if choice == 1:
            return var, lambda env, arr, v=var: env[v]
        op = self.rng.choice(["+", "-", "*"])
        other = self.rng.choice("abc")
        fn = {
            "+": lambda x, y: w32(x + y),
            "-": lambda x, y: w32(x - y),
            "*": lambda x, y: w32(x * y),
        }[op]
        return f"({var} {op} {other})", (
            lambda env, arr, v=var, o=other, f=fn: f(env[v], env[o])
        )

    def _index(self):
        var = self.rng.choice("abc")
        k = self.rng.randrange(ARRAY)
        # ((v % ARRAY) + ARRAY) % ARRAY is always a safe index; keep the
        # C and Python forms identical.
        src = f"((({var} + {k}) % {ARRAY} + {ARRAY}) % {ARRAY})"

        def fn(env, arr, v=var, kk=k):
            return (srem_like(env[v] + kk) + ARRAY) % ARRAY

        def srem_like(x):
            return x - sdiv(x, ARRAY) * ARRAY

        return src, fn

    def statement(self):
        choice = self.rng.randrange(6)
        if choice == 0:  # scalar update
            var = self.rng.choice("abc")
            src, fn = self._value()
            self.c_lines.append(f"{var} = {src};")
            self.py_ops.append(lambda env, arr, v=var, f=fn: env.__setitem__(v, f(env, arr)))
        elif choice == 1:  # array store
            isrc, ifn = self._index()
            vsrc, vfn = self._value()
            self.c_lines.append(f"arr[{isrc}] = {vsrc};")
            self.py_ops.append(
                lambda env, arr, i=ifn, f=vfn: arr.__setitem__(i(env, arr), f(env, arr))
            )
        elif choice == 2:  # array load into scalar
            var = self.rng.choice("abc")
            isrc, ifn = self._index()
            self.c_lines.append(f"{var} = arr[{isrc}];")
            self.py_ops.append(
                lambda env, arr, v=var, i=ifn: env.__setitem__(v, arr[i(env, arr)])
            )
        elif choice == 3:  # array read-modify-write
            isrc, ifn = self._index()
            vsrc, vfn = self._value()
            self.c_lines.append(f"arr[{isrc}] = arr[{isrc}] + {vsrc};")

            def op(env, arr, i=ifn, f=vfn):
                idx = i(env, arr)
                arr[idx] = w32(arr[idx] + f(env, arr))

            self.py_ops.append(op)
        elif choice == 4 and self.depth < 2:  # bounded for loop
            # A dedicated counter (l0/l1 by depth) that loop bodies can
            # never touch, so termination is guaranteed.
            bound = self.rng.randrange(1, 5)
            counter = f"l{self.depth}"
            inner = _ProgramBuilder(self.rng)
            inner.depth = self.depth + 1
            for _ in range(self.rng.randrange(1, 3)):
                inner.statement()
            self.c_lines.append(
                f"for (int {counter} = 0; {counter} < {bound}; {counter}++) {{"
            )
            self.c_lines.extend("    " + line for line in inner.c_lines)
            self.c_lines.append("}")

            def loop(env, arr, b=bound, body=list(inner.py_ops)):
                for _ in range(b):
                    for op in body:
                        op(env, arr)

            self.py_ops.append(loop)
        else:  # conditional
            var = self.rng.choice("abc")
            threshold = self.rng.randrange(0, 60)
            inner = _ProgramBuilder(self.rng)
            inner.depth = self.depth + 1
            inner.statement()
            self.c_lines.append(f"if ({var} > {threshold}) {{")
            self.c_lines.extend("    " + line for line in inner.c_lines)
            self.c_lines.append("}")

            def cond(env, arr, v=var, t=threshold, body=list(inner.py_ops)):
                if env[v] > t:
                    for op in body:
                        op(env, arr)

            self.py_ops.append(cond)


def generate_program(seed, statements=10):
    rng = random.Random(seed)
    builder = _ProgramBuilder(rng)
    for _ in range(statements):
        builder.statement()
    body = "\n    ".join(builder.c_lines)
    source = f"""
int arr[{ARRAY}];
int out[{ARRAY + 3}];
int main() {{
    int a = 3, b = 7, c = 11;
    int i;
    {body}
    for (i = 0; i < {ARRAY}; i++) out[i] = arr[i];
    out[{ARRAY}] = a; out[{ARRAY + 1}] = b; out[{ARRAY + 2}] = c;
    return 0;
}}
"""

    def evaluate():
        env = {"a": 3, "b": 7, "c": 11, "i": 0}
        arr = [0] * ARRAY
        for op in builder.py_ops:
            op(env, arr)
        return [x & 0xFFFFFFFF for x in arr] + [
            env["a"] & 0xFFFFFFFF,
            env["b"] & 0xFFFFFFFF,
            env["c"] & 0xFFFFFFFF,
        ]

    return source, evaluate


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_programs_match_python_mirror(seed):
    source, evaluate = generate_program(seed)
    program = compile_minic(source)
    run = run_reference(program, max_steps=2_000_000)
    got = run.words_at(program.symbol("g_out"), ARRAY + 3)
    assert got == evaluate(), source


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_programs_match_with_peephole(seed):
    source, evaluate = generate_program(seed)
    program = compile_minic(source, optimize=True)
    run = run_reference(program, max_steps=2_000_000)
    got = run.words_at(program.symbol("g_out"), ARRAY + 3)
    assert got == evaluate(), source
