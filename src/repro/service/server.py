"""Asyncio JSON-over-HTTP simulation service (stdlib only).

Mounts the experiment engine as a long-running server: submissions
become :class:`~repro.service.jobs.JobRecord`\\ s executed on a bounded
thread pool whose simulations run through the process-wide
:class:`~repro.service.scheduler.Scheduler` — so identical concurrent
requests coalesce at the request level (one job record), identical
grid points across different requests coalesce at the scheduler level
(one simulation), and every result lands in the unified store exactly
as an in-process ``run_experiment`` would put it there (the
``service-smoke`` CI gate diffs the two byte for byte).

Endpoints (see docs/SERVICE.md)
-------------------------------
``GET  /status``            service, scheduler and store counters
``GET  /experiments``       the spec registry (ids + titles + grid sizes)
``POST /experiment``        ``{"experiment", "settings"?, "workers"?}``
``POST /simulate``          ``{"benchmark", "arch"?, "policy"?,
                            "trace_seed"?, "policy_kwargs"?}``
``GET  /job/<id>``          job snapshot (result included when done)
``GET  /job/<id>/events``   chunked NDJSON progress stream until settle
``GET  /artifact/<id>``     the experiment's archived JSON artifact

The HTTP layer is a deliberately small hand-rolled HTTP/1.1 — request
line + headers + Content-Length body, one request per connection —
because the stdlib has no async HTTP server and this service must not
grow hard dependencies.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.service.jobs import DONE, FAILED, JobTable
from repro.service.scheduler import get_scheduler


class ServiceError(Exception):
    """A request error with an HTTP status."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class SimulationService:
    """Transport-independent service core: submit and execute jobs.

    ``max_active`` bounds concurrently *executing* jobs (each runs the
    engine with its own worker pool); ``max_pending`` bounds the total
    queued+running backlog — submissions beyond it are refused with 503
    (backpressure) rather than queued without bound.
    """

    def __init__(self, workers=None, max_active=2, max_pending=64,
                 artifact_dir=None):
        self.workers = workers
        self.max_pending = max_pending
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        self.jobs = JobTable()
        self.scheduler = get_scheduler()
        self._executor = ThreadPoolExecutor(
            max_workers=max_active, thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------ submission
    def submit(self, kind, request):
        """Validate, coalesce and enqueue one submission; returns
        ``(record, created)``."""
        request = self._validate(kind, request)
        if len(self.jobs.active()) >= self.max_pending:
            raise ServiceError(
                503, f"backlog full ({self.max_pending} jobs pending)"
            )
        record, created = self.jobs.submit(kind, request)
        if created:
            self._executor.submit(self._run, record)
        return record, created

    def _validate(self, kind, request):
        if not isinstance(request, dict):
            raise ServiceError(400, "request body must be a JSON object")
        if kind == "experiment":
            from repro.analysis.engine import all_experiments

            experiment = request.get("experiment")
            registry = all_experiments()
            if experiment not in registry:
                raise ServiceError(
                    400,
                    f"unknown experiment {experiment!r}; "
                    f"options: {', '.join(registry)}",
                )
            settings = request.get("settings", "default")
            if settings not in ("smoke", "default", "full"):
                raise ServiceError(
                    400, "settings must be smoke, default or full"
                )
            return {
                "experiment": experiment,
                "settings": settings,
                "workers": request.get("workers"),
            }
        if kind == "simulate":
            from repro.arch import ARCHITECTURES
            from repro.policies import POLICIES
            from repro.workloads import BENCHMARKS

            benchmark = request.get("benchmark")
            arch = request.get("arch", "nvmr")
            policy = request.get("policy", "jit")
            if benchmark not in BENCHMARKS:
                raise ServiceError(400, f"unknown benchmark {benchmark!r}")
            if arch not in ARCHITECTURES:
                raise ServiceError(400, f"unknown architecture {arch!r}")
            if policy not in POLICIES:
                raise ServiceError(400, f"unknown policy {policy!r}")
            policy_kwargs = request.get("policy_kwargs") or {}
            if not isinstance(policy_kwargs, dict):
                raise ServiceError(400, "policy_kwargs must be an object")
            return {
                "benchmark": benchmark,
                "arch": arch,
                "policy": policy,
                "trace_seed": int(request.get("trace_seed", 0)),
                "policy_kwargs": policy_kwargs,
            }
        raise ServiceError(400, f"unknown job kind {kind!r}")

    # ------------------------------------------------------- execution
    def _run(self, record):
        record.mark_running()
        try:
            if record.kind == "experiment":
                result = self._run_experiment(record)
            else:
                result = self._run_simulation(record)
        except Exception as error:  # job failure is a result, not a crash
            record.mark_failed(error)
        else:
            record.mark_done(result)

    def _settings(self, name):
        from repro.analysis.engine import ExperimentSettings

        return {
            "smoke": ExperimentSettings.smoke,
            "default": ExperimentSettings.default,
            "full": ExperimentSettings.full,
        }[name]()

    def _run_experiment(self, record):
        from repro.analysis import engine

        request = record.request
        run = engine.run_experiment(
            request["experiment"],
            settings=self._settings(request["settings"]),
            workers=request["workers"] or self.workers,
            artifact_dir=self.artifact_dir,
            progress=lambda done, total, label: record.add_event(
                {"done": done, "total": total, "label": label}
            ),
        )
        return {
            "experiment": run.spec_id,
            "title": run.title,
            "jobs_total": run.jobs_total,
            "fresh_runs": run.fresh_runs,
            "complete": run.complete,
            "result": engine._encode(run.result),
            "rendered": run.rendered,
            "artifact": str(run.artifact_path) if run.artifact_path else None,
        }

    def _run_simulation(self, record):
        from repro.analysis.engine import cached_run
        from repro.analysis.runcache import _result_to_dict
        from repro.sim.platform import PlatformConfig

        request = record.request
        config = PlatformConfig(
            arch=request["arch"],
            policy=request["policy"],
            policy_kwargs=dict(request["policy_kwargs"]),
        )
        record.add_event(
            {
                "done": 0,
                "total": 1,
                "label": f"sim:{request['benchmark']}/{request['arch']}"
                         f"/{request['policy']}/seed{request['trace_seed']}",
            }
        )
        result = cached_run(request["benchmark"], config,
                            request["trace_seed"])
        return {
            "benchmark": request["benchmark"],
            "run": _result_to_dict(result),
            "total_energy_nj": result.total_energy,
        }

    # ---------------------------------------------------------- status
    def status(self):
        from repro.analysis import runcache
        from repro.sim import tracestore

        store = runcache.unified_store()
        return {
            "service": "repro-nvmr",
            "jobs": self.jobs.counts(),
            "scheduler": self.scheduler.stats(),
            "store": {
                "root": str(runcache.cache_dir()),
                "enabled": runcache.enabled(),
                "runs": store.namespace("").stats(),
                "trace_keys": tracestore._keys().stats(),
                "trace_blobs": tracestore._blobs().stats(),
            },
            "artifact_dir": str(self.artifact_dir) if self.artifact_dir
            else None,
        }

    def experiments(self):
        from repro.analysis.engine import all_experiments

        return [
            {"id": spec.id, "title": spec.title, "static": spec.static}
            for spec in all_experiments().values()
        ]

    def artifact(self, experiment_id):
        from repro.analysis.engine import artifact_path

        if self.artifact_dir is None:
            raise ServiceError(404, "server has no artifact directory")
        path = artifact_path(experiment_id, self.artifact_dir)
        try:
            return json.loads(path.read_text())
        except OSError:
            raise ServiceError(
                404, f"no artifact for {experiment_id!r}"
            ) from None
        except ValueError:
            raise ServiceError(
                500, f"artifact for {experiment_id!r} is corrupt"
            ) from None

    def close(self):
        self._executor.shutdown(wait=False, cancel_futures=True)


# ------------------------------------------------------------ HTTP layer
_ACTIVE_STATES = ("queued", "running")


class ServiceServer:
    """The asyncio HTTP front of a :class:`SimulationService`."""

    def __init__(self, service, host="127.0.0.1", port=8321):
        self.service = service
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Ephemeral-port binds (port=0) resolve here.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.service.close()

    # ------------------------------------------------------ connection
    async def _handle(self, reader, writer):
        try:
            method, path, query, body = await self._read_request(reader)
            await self._route(writer, method, path, query, body)
        except ServiceError as error:
            await self._respond(
                writer, error.status, {"error": str(error)}
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except Exception as error:  # a handler bug must not kill the server
            try:
                await self._respond(writer, 500, {"error": repr(error)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(reader):
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError(400, "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        raw = await reader.readexactly(length) if length else b""
        body = None
        if raw:
            try:
                body = json.loads(raw)
            except ValueError:
                raise ServiceError(400, "request body is not JSON") from None
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return method, split.path.rstrip("/") or "/", query, body

    async def _route(self, writer, method, path, query, body):
        service = self.service
        if method == "GET" and path == "/status":
            return await self._respond(writer, 200, service.status())
        if method == "GET" and path == "/experiments":
            return await self._respond(
                writer, 200, {"experiments": service.experiments()}
            )
        if method == "POST" and path in ("/experiment", "/simulate"):
            record, created = service.submit(path.lstrip("/"), body or {})
            return await self._respond(
                writer,
                202 if created else 200,
                {
                    "job": record.id,
                    "state": record.state,
                    "coalesced": not created,
                },
            )
        if method == "GET" and path.startswith("/job/"):
            tail = path[len("/job/"):]
            if tail.endswith("/events"):
                record = self._record(tail[: -len("/events")])
                since = int(query.get("since", "0") or 0)
                return await self._stream_events(writer, record, since)
            record = self._record(tail)
            return await self._respond(
                writer, 200, record.snapshot(with_result=True)
            )
        if method == "GET" and path.startswith("/artifact/"):
            experiment_id = path[len("/artifact/"):]
            return await self._respond(
                writer, 200, service.artifact(experiment_id)
            )
        raise ServiceError(404, f"no route for {method} {path}")

    def _record(self, job_id):
        record = self.service.jobs.get(job_id)
        if record is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return record

    # ------------------------------------------------------- responses
    @staticmethod
    async def _respond(writer, status, payload):
        body = json.dumps(payload).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _stream_events(self, writer, record, since):
        """Stream progress as chunked NDJSON until the job settles.

        Each line is one progress event; the final line is the job
        snapshot (state + result summary), so a client that consumes
        the stream needs no follow-up poll to learn the outcome.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        def chunk(line_obj):
            line = json.dumps(line_obj).encode() + b"\n"
            return f"{len(line):x}\r\n".encode() + line + b"\r\n"

        seen = since
        while True:
            events = record.events_since(seen)
            for event in events:
                writer.write(chunk({"event": event}))
            if events:
                seen += len(events)
                await writer.drain()
            snapshot = record.snapshot(with_result=False)
            if snapshot["state"] not in _ACTIVE_STATES and not record.events_since(seen):
                writer.write(chunk(record.snapshot(with_result=True)))
                break
            # The job runs in an executor thread; poll its condition
            # without blocking the event loop.
            await asyncio.sleep(0.05)
        writer.write(b"0\r\n\r\n")
        await writer.drain()


# ----------------------------------------------------------- entrypoints
def serve(host="127.0.0.1", port=8321, workers=None, max_active=2,
          artifact_dir=None, announce=None):
    """Run the service until interrupted (the CLI ``serve`` verb)."""
    service = SimulationService(
        workers=workers, max_active=max_active, artifact_dir=artifact_dir
    )
    server = ServiceServer(service, host=host, port=port)

    async def _main():
        await server.start()
        if announce is not None:
            announce(server)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


class BackgroundServer:
    """An in-process server on a background thread (tests + smoke).

    Usage::

        with BackgroundServer(artifact_dir=tmp) as server:
            client = ServiceClient(port=server.port)
    """

    def __init__(self, host="127.0.0.1", port=0, **service_kwargs):
        self.service = SimulationService(**service_kwargs)
        self.server = ServiceServer(self.service, host=host, port=port)
        self._loop = None
        self._task = None
        self._thread = None
        self._started = threading.Event()

    @property
    def host(self):
        return self.server.host

    @property
    def port(self):
        return self.server.port

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("service server failed to start")
        return self

    async def _amain(self):
        await self.server.start()
        self._started.set()
        await self.server.serve_forever()

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._task = self._loop.create_task(self._amain())
        try:
            self._loop.run_until_complete(self._task)
        except asyncio.CancelledError:
            pass
        finally:
            self._loop.close()

    def __exit__(self, *exc):
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._task.cancel)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()
        return False
