"""Simulation-as-a-service: the scheduler core and the HTTP service.

Three layers, innermost first:

* :mod:`repro.service.scheduler` — the transport-agnostic execution
  core extracted from the experiment engine's parallel path: job
  planning against the two cache layers, bounded worker pools with
  backpressure, in-flight deduplication of identical job keys, and
  structured :class:`~repro.service.scheduler.ProgressEvent`\\ s.  The
  synchronous engine/CLI path (:func:`repro.analysis.parallel.
  prefetch_runs`) is a thin caller of it and is bit-identical to the
  pre-service code.
* :mod:`repro.service.jobs` — service-level job lifecycle: submitted
  requests become :class:`~repro.service.jobs.JobRecord`\\ s with
  states, progress logs and results; identical concurrent submissions
  coalesce onto one in-flight job.
* :mod:`repro.service.server` / :mod:`repro.service.client` — an
  asyncio JSON-over-HTTP server (stdlib only) exposing ``simulate``,
  ``experiment``, ``artifact`` and ``status`` endpoints with streamed
  progress, and the matching blocking client the CLI ``submit`` /
  ``status`` verbs use.

See docs/SERVICE.md for endpoint and lifecycle details.
"""

from repro.service.scheduler import ProgressEvent, Scheduler, get_scheduler

__all__ = ["ProgressEvent", "Scheduler", "get_scheduler"]
