"""Crash-consistency verification: random program generation,
power-failure fault injection, and architectural invariant oracles.

The entry point is :func:`repro.verify.harness.run_fuzz` (exposed on the
CLI as ``verify-fuzz``); failures shrink to replayable ``repro_*.s``
reproducers handled by :func:`repro.verify.harness.replay_reproducer`
(CLI ``verify-replay``).
"""

from repro.verify.harness import (
    FuzzFailure,
    FuzzSummary,
    RunPlan,
    replay_reproducer,
    run_case,
    run_differential,
    run_fuzz,
    run_single,
    shrink_failure,
    write_reproducer,
)
from repro.verify.oracles import (
    CrashConsistencyMonitor,
    InvariantViolation,
    check_final_state,
    check_nvmr_structures,
)
from repro.verify.progen import (
    AsmSpec,
    MiniccSpec,
    format_program,
    generate_asm_spec,
    generate_minicc_spec,
)

__all__ = [
    "AsmSpec",
    "CrashConsistencyMonitor",
    "FuzzFailure",
    "FuzzSummary",
    "InvariantViolation",
    "MiniccSpec",
    "RunPlan",
    "check_final_state",
    "check_nvmr_structures",
    "format_program",
    "generate_asm_spec",
    "generate_minicc_spec",
    "replay_reproducer",
    "run_case",
    "run_differential",
    "run_fuzz",
    "run_single",
    "shrink_failure",
    "write_reproducer",
]
