"""Backup policies: JIT oracle, watchdog timer, Spendthrift MLP."""

import numpy as np
import pytest

from repro.policies import POLICIES, make_policy
from repro.policies.base import NeverPolicy, PolicyAction
from repro.policies.jit import JitPolicy
from repro.policies.spendthrift import (
    LABEL_MARGIN,
    SpendthriftPolicy,
    train_spendthrift_model,
)
from repro.policies.watchdog import WatchdogPolicy


class FakeArch:
    def __init__(self, backup_cost=500.0, worst_step=100.0):
        self._cost = backup_cost
        self._worst = worst_step

    def estimate_backup_cost(self):
        return self._cost

    def worst_step_cost(self):
        return self._worst


class FakeCapacitor:
    def __init__(self, energy, capacity=10_000.0):
        self.energy = energy
        self.capacity = capacity

    @property
    def fraction(self):
        return self.energy / self.capacity


class FakePlatform:
    def __init__(self, energy, backup_cost=500.0):
        self.capacitor = FakeCapacitor(energy)
        self.arch = FakeArch(backup_cost)


def test_registry_contents():
    assert set(POLICIES) == {"jit", "watchdog", "spendthrift", "task", "never"}
    with pytest.raises(ValueError):
        make_policy("nonexistent")


def test_never_policy_never_backs_up():
    policy = NeverPolicy()
    platform = FakePlatform(energy=1.0)
    assert policy.after_step(platform, 1) == PolicyAction.NONE


# ----------------------------------------------------------------- JIT
def test_jit_waits_while_plenty_of_energy():
    policy = JitPolicy()
    platform = FakePlatform(energy=5000.0)
    assert policy.after_step(platform, 1) == PolicyAction.NONE


def test_jit_shuts_down_at_threshold():
    policy = JitPolicy()
    platform = FakePlatform(energy=599.0)  # cost 500 + worst 100 = 600
    assert policy.after_step(platform, 1) == PolicyAction.SHUTDOWN


def test_jit_threshold_tracks_backup_cost():
    policy = JitPolicy()
    platform = FakePlatform(energy=900.0, backup_cost=850.0)
    assert policy.after_step(platform, 1) == PolicyAction.SHUTDOWN
    platform2 = FakePlatform(energy=900.0, backup_cost=100.0)
    assert policy.after_step(platform2, 1) == PolicyAction.NONE


def test_jit_margin_scales_the_step_pad():
    # cost 500 + margin * worst 100: margin 1 shuts down at <= 600,
    # margin 4 already at <= 900 — a wider safety margin gives up
    # earlier in the period.
    platform = FakePlatform(energy=700.0)
    assert JitPolicy().after_step(platform, 1) == PolicyAction.NONE
    assert JitPolicy(margin=4.0).after_step(platform, 1) == PolicyAction.SHUTDOWN


def test_jit_margin_default_is_bit_identical():
    # margin=1.0 must not perturb the pre-tunable threshold arithmetic
    # (the replay/differential suites pin this end to end; this pins
    # the unit-level identity).
    arch = FakeArch(backup_cost=500.0, worst_step=100.0)
    assert JitPolicy()._pad(arch) == arch.worst_step_cost()


def test_jit_margin_validation():
    with pytest.raises(ValueError):
        JitPolicy(margin=0)
    with pytest.raises(ValueError):
        JitPolicy(margin=-2.0)


# ------------------------------------------------------------ watchdog
def test_watchdog_fires_every_period():
    policy = WatchdogPolicy(period=100)
    platform = FakePlatform(energy=1e9)
    fired = 0
    for _ in range(35):
        if policy.after_step(platform, 10) == PolicyAction.BACKUP:
            fired += 1
            policy.on_backup(platform)
    assert fired == 3  # 350 cycles / ~100-cycle period


def test_watchdog_resets_on_any_backup():
    policy = WatchdogPolicy(period=100)
    platform = FakePlatform(energy=1e9)
    policy.after_step(platform, 90)
    policy.on_backup(platform)  # e.g. a structural backup
    assert policy.after_step(platform, 90) == PolicyAction.NONE
    assert policy.after_step(platform, 20) == PolicyAction.BACKUP


def test_watchdog_period_validation():
    with pytest.raises(ValueError):
        WatchdogPolicy(period=0)


def test_watchdog_resets_each_period():
    policy = WatchdogPolicy(period=100)
    platform = FakePlatform(energy=1e9)
    policy.after_step(platform, 90)
    policy.on_period_start(platform, None)
    assert policy.after_step(platform, 50) == PolicyAction.NONE


# --------------------------------------------------------- spendthrift
def test_spendthrift_training_accuracy():
    """The paper reports ~97% accuracy for the trained model."""
    _, accuracy = train_spendthrift_model(seed=42, epochs=250, samples=4000)
    assert accuracy >= 0.93


def test_spendthrift_model_separates_clear_cases():
    model, _ = train_spendthrift_model()
    must_backup = np.array([0.05, 0.3, 0.5])
    keep_going = np.array([0.9, 0.1, 0.5])
    assert model.predict(must_backup)
    assert not model.predict(keep_going)


def test_spendthrift_checks_at_interval():
    policy = SpendthriftPolicy(check_interval=100)
    policy.reset(FakePlatform(energy=9000.0))
    platform = FakePlatform(energy=9000.0)
    # Below the interval: no decision is even attempted.
    assert policy.after_step(platform, 50) == PolicyAction.NONE
    action = policy.after_step(platform, 60)  # crosses 100 cycles
    assert action in (PolicyAction.NONE, PolicyAction.SHUTDOWN)


def test_spendthrift_shuts_down_when_nearly_empty():
    policy = SpendthriftPolicy(check_interval=1)
    policy.reset(FakePlatform(energy=100.0))
    platform = FakePlatform(energy=100.0, backup_cost=50.0)
    decisions = [policy.after_step(platform, 1) for _ in range(20)]
    assert PolicyAction.SHUTDOWN in decisions


def test_spendthrift_keeps_going_when_full():
    policy = SpendthriftPolicy(check_interval=1)
    policy.reset(FakePlatform(energy=10_000.0))
    platform = FakePlatform(energy=10_000.0, backup_cost=50.0)
    decisions = [policy.after_step(platform, 1) for _ in range(20)]
    assert PolicyAction.SHUTDOWN not in decisions


def test_label_margin_documented_positive():
    assert LABEL_MARGIN > 0


# --------------------------------------------------------------- task
def test_task_policy_registered():
    policy = make_policy("task")
    assert policy.name == "task"


def test_task_policy_validation():
    from repro.policies.task import TaskBoundaryPolicy

    with pytest.raises(ValueError):
        TaskBoundaryPolicy(min_task_cycles=0)
    with pytest.raises(ValueError):
        TaskBoundaryPolicy(min_task_cycles=100, max_task_cycles=50)


def test_task_policy_backs_up_at_call_boundaries():
    from repro.workloads import run_workload

    task = run_workload("qsort", arch="nvmr", policy="task", trace_seed=0)
    jit = run_workload("qsort", arch="nvmr", policy="jit", trace_seed=0)
    # The paper's critique of task systems: far more backups than the
    # energy supply requires, and correspondingly more energy.
    assert task.backups > 3 * jit.backups
    assert task.total_energy > jit.total_energy


def test_task_policy_forced_split_prevents_livelock():
    """A call-free long loop must still commit progress (forced task
    splits), so even call-sparse code completes."""
    from repro.workloads import run_workload

    result = run_workload("hist", arch="nvmr", policy="task", trace_seed=0)
    assert result.backups > 10
