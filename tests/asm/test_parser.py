"""Assembly line parsing: operands, labels, comments, strings."""

import pytest

from repro.asm.errors import AsmError
from repro.asm.parser import Imm, Mem, Reg, Sym, parse_int, parse_line, parse_operand


def test_parse_int_forms():
    assert parse_int("42") == 42
    assert parse_int("-7") == -7
    assert parse_int("0x1F") == 31
    assert parse_int("0b101") == 5
    assert parse_int("'a'") == 97
    assert parse_int("'\\n'") == 10
    assert parse_int("'\\0'") == 0


def test_parse_int_rejects_garbage():
    with pytest.raises(AsmError):
        parse_int("twelve")
    with pytest.raises(AsmError):
        parse_int("'ab'")


def test_operand_register_and_aliases():
    assert parse_operand("r3") == Reg(3)
    assert parse_operand("SP") == Reg(13)
    assert parse_operand("lr") == Reg(14)


def test_operand_immediates():
    assert parse_operand("#5") == Imm(5)
    assert parse_operand("#-12") == Imm(-12)
    assert parse_operand("#0x10") == Imm(16)
    assert parse_operand("#'x'") == Imm(120)


def test_operand_memory_forms():
    assert parse_operand("[r1, #8]") == Mem(base=1, offset=8)
    assert parse_operand("[r1]") == Mem(base=1, offset=0)
    assert parse_operand("[r2, r3]") == Mem(base=2, index=3)
    assert parse_operand("[sp, #-4]") == Mem(base=13, offset=-4)


def test_operand_memory_errors():
    with pytest.raises(AsmError):
        parse_operand("[#4, r1]")
    with pytest.raises(AsmError):
        parse_operand("[r1, foo]")


def test_operand_symbol():
    assert parse_operand("loop") == Sym("loop")
    assert parse_operand(".L3") == Sym(".L3")


def test_parse_line_labels_and_instruction():
    stmt = parse_line("loop: add r0, r1, #2 ; comment", 7)
    assert stmt.labels == ("loop",)
    assert stmt.kind == "instr"
    assert stmt.name == "add"
    assert stmt.operands == (Reg(0), Reg(1), Imm(2))
    assert stmt.line == 7


def test_parse_line_multiple_labels():
    stmt = parse_line("a: b: nop", 1)
    assert stmt.labels == ("a", "b")
    assert stmt.name == "nop"


def test_parse_line_comments():
    assert parse_line("; only a comment", 1).kind == "empty"
    assert parse_line("// slashes too", 1).kind == "empty"
    assert parse_line("   ", 1).kind == "empty"


def test_parse_line_directive():
    stmt = parse_line(".word 1, 2, 3", 1)
    assert stmt.kind == "directive"
    assert stmt.name == ".word"
    assert stmt.operands == ("1", "2", "3")


def test_parse_line_asciz_keeps_string_whole():
    stmt = parse_line('.asciz "hello, world ; not a comment"', 1)
    assert stmt.operands == ('"hello, world ; not a comment"',)


def test_memory_operand_with_commas_splits_correctly():
    stmt = parse_line("ldr r0, [r1, #4]", 1)
    assert stmt.operands == (Reg(0), Mem(base=1, offset=4))
