"""Figure 11: normalised energy breakdown, Clank vs NvMR (JIT).

Paper: per benchmark, two stacked bars normalised to Clank's total.
Clank's backup component is large for violation-heavy benchmarks; NvMR
replaces it with small forward/backup overheads (renaming traffic), a
few % of total; stringsearch is dominated by forward progress (~90%)
and has little to gain.

This harness is a view over the experiment registry (``fig11`` spec).
"""

from conftest import run_spec


def test_fig11_energy_breakdown(benchmark, settings, report):
    out = run_spec(benchmark, "fig11", settings, report)
    for bench, per_arch in out.items():
        clank_total = sum(per_arch["clank"].values())
        nvmr_total = sum(per_arch["nvmr"].values())
        assert abs(clank_total - 1.0) < 1e-9
        # NvMR's renaming overhead must stay a small share of its total
        # (paper: ~3%).
        overhead = sum(
            per_arch["nvmr"].get(cat, 0.0)
            for cat in ("forward_overhead", "backup_overhead",
                        "restore_overhead", "reclaim")
        )
        assert overhead / nvmr_total < 0.25, bench
    # stringsearch: forward progress dominates (paper: ~90%).
    stringsearch = out["stringsearch"]["clank"]
    assert stringsearch["forward"] > 0.6
    # qsort-like benchmarks: Clank spends a large share on backups.
    assert out["qsort"]["clank"]["backup"] > out["stringsearch"]["clank"]["backup"]
