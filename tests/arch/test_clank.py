"""Clank: violation detection and backup behaviour.

The default cache is 256B/8-way/16B blocks = 2 sets.  Block addresses
that are multiples of 32 map to set 0, so a run of 9 such blocks forces
an eviction from set 0.
"""

from repro.arch.base import BackupReason

from tests.arch.conftest import load_word, make_arch, store_word


def set0_blocks(base, count):
    """Block addresses all mapping to cache set 0."""
    return [base + i * 32 for i in range(count)]


def fill_set0(arch, base, count=8, write=False):
    for addr in set0_blocks(base, count):
        if write:
            store_word(arch, addr, addr)
        else:
            load_word(arch, addr)


def test_write_dominated_eviction_is_silent(data_base):
    arch = make_arch("clank")
    arch.backup(BackupReason.INITIAL)
    # Store-first to 8 set-0 blocks, then touch a 9th: the evicted dirty
    # block is write-dominated -> persisted in place, no backup.
    fill_set0(arch, data_base, 8, write=True)
    before = arch.stats.backups
    store_word(arch, data_base + 8 * 32, 1)
    assert arch.stats.backups == before
    assert arch.stats.violations == 0
    # The evicted block's data reached its home address.
    assert arch.nvm.peek_word(data_base) == data_base


def test_read_then_write_eviction_triggers_violation_backup(data_base):
    arch = make_arch("clank")
    arch.backup(BackupReason.INITIAL)
    # Load-first then store: the block becomes read-dominated + dirty.
    load_word(arch, data_base)
    store_word(arch, data_base, 42)
    before = arch.stats.backups
    # Evict it by touching 8 more set-0 blocks.
    fill_set0(arch, data_base + 32, 8)
    assert arch.stats.violations == 1
    assert arch.stats.backups == before + 1
    assert arch.stats.backups_by_reason[BackupReason.VIOLATION] == 1


def test_clean_eviction_never_backs_up(data_base):
    arch = make_arch("clank")
    arch.backup(BackupReason.INITIAL)
    fill_set0(arch, data_base, 9)  # loads only
    assert arch.stats.backups == 1  # just the initial one
    assert arch.stats.violations == 0


def test_backup_persists_dirty_blocks_and_cleans(data_base):
    arch = make_arch("clank")
    store_word(arch, data_base, 7)
    store_word(arch, data_base + 64, 8)
    assert len(arch.cache.dirty_lines()) == 2
    arch.backup(BackupReason.POLICY)
    assert arch.cache.dirty_lines() == []
    assert arch.nvm.peek_word(data_base) == 7
    assert arch.nvm.peek_word(data_base + 64) == 8


def test_backup_resets_dominance_tracking(data_base):
    arch = make_arch("clank")
    load_word(arch, data_base)  # read-dominated
    arch.backup(BackupReason.POLICY)
    # New section: write-first is now write-dominated despite the old read.
    store_word(arch, data_base, 1)
    fill_set0(arch, data_base + 32, 8)
    assert arch.stats.violations == 0


def test_gbf_remembers_dominance_across_refetch(data_base):
    arch = make_arch("clank")
    arch.backup(BackupReason.INITIAL)
    load_word(arch, data_base)  # read-dominated
    fill_set0(arch, data_base + 32, 8)  # evict it (clean)
    # Refetch and write: GBF flags it read-dominated -> conservative R.
    store_word(arch, data_base, 5)
    before = arch.stats.violations
    fill_set0(arch, data_base + 32 * 9, 8)  # evict it dirty
    assert arch.stats.violations == before + 1


def test_restore_rewinds_registers(data_base):
    arch = make_arch("clank")
    arch.core.rf.regs[0] = 11
    arch.core.rf.pc = 0x40
    arch.backup(BackupReason.POLICY)
    arch.core.rf.regs[0] = 99
    arch.core.rf.pc = 0x80
    arch.on_power_failure()
    arch.restore()
    assert arch.core.rf.regs[0] == 11
    assert arch.core.rf.pc == 0x40
    assert arch.stats.restores == 1


def test_power_failure_drops_cache_contents(data_base):
    arch = make_arch("clank")
    arch.backup(BackupReason.INITIAL)
    store_word(arch, data_base, 123)  # dirty, not yet persisted
    arch.on_power_failure()
    arch.restore()
    assert load_word(arch, data_base) == 0  # store was lost, as expected


def test_backup_is_atomic_under_energy_exhaustion(data_base):
    import pytest

    from repro.energy.accounting import PowerFailure

    arch = make_arch("clank", capacity=2800.0)
    arch.backup(BackupReason.INITIAL)  # cheap: no dirty data
    committed = arch.nvm.committed_checkpoint()
    for i in range(8):
        store_word(arch, data_base + i * 32, i)
    arch.core.rf.regs[0] = 77
    with pytest.raises(PowerFailure):
        arch.backup(BackupReason.POLICY)
    # Nothing was persisted: previous checkpoint intact, homes untouched.
    assert arch.nvm.committed_checkpoint() is committed
    assert arch.nvm.peek_word(data_base) == 0


def test_estimate_matches_actual_cost(data_base):
    arch = make_arch("clank")
    for i in range(5):
        store_word(arch, data_base + i * 32, i)
    estimate = arch.estimate_backup_cost()
    spent_before = arch.ledger.total_spent
    arch.backup(BackupReason.POLICY)
    assert arch.ledger.total_spent - spent_before == estimate


def test_debug_read_word_sees_committed_state(data_base):
    arch = make_arch("clank")
    store_word(arch, data_base, 5)
    assert arch.debug_read_word(data_base) == 0  # not yet persisted
    arch.backup(BackupReason.POLICY)
    assert arch.debug_read_word(data_base) == 5
