"""Intermittent architectures.

Four architectures share the platform's CPU, NVM, energy and policy
machinery and differ in how they keep NVM consistent across power
failures:

* :class:`~repro.arch.ideal.IdealArchitecture` — a measurement device:
  persists dirty evictions in place and *counts* idempotency violations
  without acting on them (used for Table 3).
* :class:`~repro.arch.clank.ClankArchitecture` — the paper's version of
  Clank [16]: detects read-dominated dirty evictions with the GBF/LBF
  and triggers a backup on every such violation.
* :class:`~repro.arch.nvmr.NvmrArchitecture` — the paper's contribution:
  renames violating blocks into a reserved NVM region via a map table,
  map-table cache and free list; optional reclamation.
* :class:`~repro.arch.hoop.HoopArchitecture` — the transaction-based
  comparison point [6]: out-of-place redo logging with an OOP buffer,
  OOP region and an idealised mapping table.
* :class:`~repro.arch.clank_original.OriginalClankArchitecture` —
  Hicks' original buffer-based Clank (paper footnote 6's comparison).
"""

from repro.arch.base import ArchStats, BackupReason, IntermittentArchitecture
from repro.arch.clank import ClankArchitecture
from repro.arch.clank_original import OriginalClankArchitecture
from repro.arch.hibernus import HibernusArchitecture
from repro.arch.hoop import HoopArchitecture
from repro.arch.ideal import IdealArchitecture
from repro.arch.nvmr import NvmrArchitecture

ARCHITECTURES = {
    "ideal": IdealArchitecture,
    "clank": ClankArchitecture,
    "clank_original": OriginalClankArchitecture,
    "hibernus": HibernusArchitecture,
    "nvmr": NvmrArchitecture,
    "hoop": HoopArchitecture,
}


def make_architecture(name, *args, **kwargs):
    """Instantiate an architecture by registry name."""
    try:
        cls = ARCHITECTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; options: {sorted(ARCHITECTURES)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "ARCHITECTURES",
    "ArchStats",
    "BackupReason",
    "ClankArchitecture",
    "HibernusArchitecture",
    "HoopArchitecture",
    "OriginalClankArchitecture",
    "IdealArchitecture",
    "IntermittentArchitecture",
    "NvmrArchitecture",
    "make_architecture",
]
