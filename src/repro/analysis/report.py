"""Deprecated shim: the report generator moved to
:mod:`repro.analysis.render` (one module now owns both the text-table
primitives and the registry-driven markdown report).  Import from
there; this name is kept so existing imports keep working."""

import warnings

from repro.analysis.render import generate_report, write_report  # noqa: F401

__all__ = ["generate_report", "write_report"]

# Module-level, so the warning fires exactly once per fresh import and
# not at all on cached re-imports (pinned by
# tests/analysis/test_deprecation_shims.py).
warnings.warn(
    "repro.analysis.report is deprecated; use repro.analysis.render",
    DeprecationWarning,
    stacklevel=2,
)
