"""Policy auto-tuning: Pareto-front threshold sweeps with bootstrap CIs.

The paper's Figure 10/13 results compare backup policies at hand-picked
thresholds (the watchdog's 8000 cycles comes from Clank [16], the task
bounds from typical DINO/Chain task sizes).  This module maps the
trade-off those picks sample: every policy declares its tunable
parameters as :class:`~repro.policies.base.TunableSpec` grids, and the
sweep evaluates each candidate threshold on two objectives —

* **energy** (uJ per completed workload, minimise), and
* **kcycles to completion** (active + off cycles, minimise — the
  intermittent-computing "forward progress" axis: a policy that backs
  up too eagerly stretches wall-clock time across many short periods),

per NVM cost table (:data:`repro.energy.model.NVM_TECHNOLOGIES` —
flash/FRAM/ReRAM/STT), reducing each technology's candidate set to its
Pareto front.  Uncertainty over harvest traces is quantified the way
the Kadoshima offline policy-evaluation study does it: percentile
bootstrap confidence intervals over per-seed aggregates, plus paired
effect sizes (Cohen's d) of the best tuned candidate against the
paper's default.

Everything here is an :class:`~repro.analysis.engine.ExperimentSpec`
(``pareto_<policy>`` and the cross-policy ``pareto_summary``), so job
enumeration, process-parallel prefetch, two-layer caching, ``--shard
K/N`` and versioned JSON artifacts come free from the engine.  The
sweep varies configurations *only* through
``PlatformConfig.policy_kwargs`` — which is why the engine's
``_config_key`` covers it.
"""

import random
import zlib
from typing import NamedTuple, Optional

from repro.analysis.engine import ExperimentSpec, Job
from repro.policies import policy_tunables
from repro.sim.platform import PlatformConfig

#: The policies whose thresholds the sweeps tune, in Figure-10 order.
TUNED_POLICIES = ("jit", "watchdog", "spendthrift", "task")

#: Sweeps run on the paper's architecture; the tuning question is
#: "which threshold", not "which hardware".
SWEEP_ARCH = "nvmr"

#: Bootstrap resamples / two-sided CI level.
BOOTSTRAP_RESAMPLES = 200
BOOTSTRAP_ALPHA = 0.05


# ------------------------------------------------------------ pareto core
def dominates(a, b):
    """True iff point ``a`` strictly Pareto-dominates ``b``.

    Both are equal-length sequences of objectives to *minimise*: ``a``
    dominates when it is no worse on every axis and strictly better on
    at least one.  (Irreflexive + transitive + asymmetric — a strict
    partial order, pinned by ``tests/analysis/test_pareto.py``.)
    """
    a, b = tuple(a), tuple(b)
    if len(a) != len(b):
        raise ValueError("points must have the same dimensionality")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(points):
    """The non-dominated subset, deduplicated and sorted.

    Invariant under permutation and duplicate insertion of ``points``
    (set semantics + canonical ordering).
    """
    unique = sorted({tuple(p) for p in points})
    return [
        p
        for p in unique
        if not any(dominates(q, p) for q in unique if q != p)
    ]


def bootstrap_ci(
    values,
    seed,
    resamples=BOOTSTRAP_RESAMPLES,
    alpha=BOOTSTRAP_ALPHA,
):
    """Percentile-bootstrap CI of the mean: ``(lo, hi)``.

    Deterministic for a fixed ``seed`` (its own ``random.Random``, no
    global state).  A single observation gets the degenerate interval
    ``(v, v)`` — smoke runs use one trace seed and still render CIs.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("bootstrap_ci needs at least one value")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choices(values, k=n)) / n for _ in range(resamples)
    )
    lo = int(resamples * (alpha / 2.0))
    hi = resamples - 1 - lo
    return (means[lo], means[hi])


def cohens_d(diffs):
    """Paired-sample Cohen's d: mean difference over its population
    standard deviation; 0.0 when the differences do not vary (or there
    are none)."""
    diffs = [float(d) for d in diffs]
    if not diffs:
        return 0.0
    mean = sum(diffs) / len(diffs)
    variance = sum((d - mean) ** 2 for d in diffs) / len(diffs)
    if variance == 0.0:
        return 0.0
    return mean / variance**0.5


def _ci_seed(*parts):
    """A stable bootstrap seed from string labels (not Python's salted
    hash())."""
    return zlib.crc32("|".join(parts).encode("utf-8"))


# ------------------------------------------------------------ candidates
class Candidate(NamedTuple):
    """One point of a policy's tuning grid."""

    policy: str
    #: ``None`` marks the paper-default candidate (empty kwargs).
    tunable: Optional[str]
    value: object
    label: str


def policy_candidates(policy):
    """The candidate list one policy contributes to a sweep.

    One paper-default candidate plus, per declared tunable, every
    non-default grid value — varied one at a time against defaults, so
    each front point is attributable to a single knob.
    """
    candidates = [Candidate(policy, None, None, f"{policy} default")]
    for spec in policy_tunables(policy):
        for value in spec.grid:
            if value == spec.default:
                continue
            candidates.append(
                Candidate(
                    policy, spec.name, value, f"{policy} {spec.name}={value}"
                )
            )
    return candidates


def candidate_config(candidate, technology):
    """The :class:`PlatformConfig` evaluating one candidate."""
    kwargs = (
        {} if candidate.tunable is None else {candidate.tunable: candidate.value}
    )
    return PlatformConfig(
        arch=SWEEP_ARCH,
        policy=candidate.policy,
        nvm_technology=technology,
        policy_kwargs=kwargs,
    )


# --------------------------------------------------------------- reduce
def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _pareto_result(settings, fetch, policies):
    """The full sweep result for ``policies`` (JSON-shaped: string keys
    and lists only, so artifacts round-trip bit-exactly)."""
    seeds = range(settings.pareto_traces)
    benches = settings.pareto_benchmarks
    result = {
        "arch": SWEEP_ARCH,
        "technologies": list(settings.pareto_technologies),
        "policies": list(policies),
        "objectives": ["energy_uj", "kcycles"],
        "candidates": {},
        "fronts": {},
        "effects": {},
    }
    for tech in settings.pareto_technologies:
        rows = []
        seed_series = {}
        for policy in policies:
            for candidate in policy_candidates(policy):
                config = candidate_config(candidate, tech)
                energy_by_seed = []
                kcycles_by_seed = []
                for seed in seeds:
                    runs = [fetch(bench, config, seed) for bench in benches]
                    energy_by_seed.append(
                        _mean(r.total_energy for r in runs) / 1e3
                    )
                    kcycles_by_seed.append(
                        _mean(r.active_cycles + r.off_cycles for r in runs)
                        / 1e3
                    )
                seed_series[candidate.label] = (energy_by_seed, kcycles_by_seed)
                energy_ci = bootstrap_ci(
                    energy_by_seed, _ci_seed(tech, candidate.label, "energy")
                )
                kcycles_ci = bootstrap_ci(
                    kcycles_by_seed, _ci_seed(tech, candidate.label, "kcycles")
                )
                rows.append(
                    {
                        "policy": candidate.policy,
                        "tunable": candidate.tunable,
                        "value": candidate.value,
                        "label": candidate.label,
                        "default": candidate.tunable is None,
                        "energy_uj": _mean(energy_by_seed),
                        "energy_ci": list(energy_ci),
                        "kcycles": _mean(kcycles_by_seed),
                        "kcycles_ci": list(kcycles_ci),
                        "on_front": False,
                    }
                )
        front = set(
            pareto_front((row["energy_uj"], row["kcycles"]) for row in rows)
        )
        for row in rows:
            row["on_front"] = (row["energy_uj"], row["kcycles"]) in front
        result["candidates"][tech] = rows
        result["fronts"][tech] = [
            row["label"] for row in rows if row["on_front"]
        ]
        result["effects"][tech] = _effects(tech, policies, rows, seed_series)
    return result


def _effects(tech, policies, rows, seed_series):
    """Per policy: the best tuned candidate vs the paper default —
    paired per-seed % saving with a bootstrap CI and Cohen's d."""
    effects = {}
    for policy in policies:
        mine = [row for row in rows if row["policy"] == policy]
        default = next(row for row in mine if row["default"])
        best = min(mine, key=lambda row: (row["energy_uj"], row["label"]))
        default_energy = seed_series[default["label"]][0]
        best_energy = seed_series[best["label"]][0]
        savings = [
            100.0 * (1.0 - b / d) if d else 0.0
            for d, b in zip(default_energy, best_energy)
        ]
        diffs = [d - b for d, b in zip(default_energy, best_energy)]
        effects[policy] = {
            "default_label": default["label"],
            "best_label": best["label"],
            "default_energy_uj": default["energy_uj"],
            "best_energy_uj": best["energy_uj"],
            "saving_percent": _mean(savings),
            "saving_ci": list(
                bootstrap_ci(savings, _ci_seed(tech, policy, "saving"))
            ),
            "cohens_d": cohens_d(diffs),
        }
    return effects


# --------------------------------------------------------------- render
def _format_ci(ci):
    return f"[{ci[0]:10.1f}, {ci[1]:10.1f}]"


def render_pareto(title, result):
    """The front tables + effect-size lines, from the result alone (an
    artifact re-renders this byte-identically with zero simulation)."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"arch: {result['arch']}   objectives: "
        f"{' / '.join(result['objectives'])} (minimise)   "
        f"95% bootstrap CIs over trace seeds"
    )
    for tech in result["technologies"]:
        rows = result["candidates"][tech]
        lines.append("")
        lines.append(f"NVM technology: {tech}")
        header = (
            f"  {'candidate':<31} {'energy uJ':>10} {'95% CI':>24} "
            f"{'kcycles':>10} {'95% CI':>24}  front"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in rows:
            lines.append(
                f"  {row['label']:<31} {row['energy_uj']:>10.1f} "
                f"{_format_ci(row['energy_ci']):>24} {row['kcycles']:>10.1f} "
                f"{_format_ci(row['kcycles_ci']):>24}  "
                f"{'*' if row['on_front'] else ''}"
            )
        lines.append(
            f"  Pareto front ({len(result['fronts'][tech])} of {len(rows)}): "
            + ", ".join(result["fronts"][tech])
        )
        lines.append("  best tuned vs paper default (energy):")
        for policy in result["policies"]:
            effect = result["effects"][tech][policy]
            lines.append(
                f"    {policy:<12} best = {effect['best_label']:<31} "
                f"saving = {effect['saving_percent']:6.2f}% "
                f"[{effect['saving_ci'][0]:6.2f}, {effect['saving_ci'][1]:6.2f}]  "
                f"d = {effect['cohens_d']:.2f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------- specs
def _pareto_grid(settings, policies):
    return [
        Job(bench, candidate_config(candidate, tech), seed)
        for tech in settings.pareto_technologies
        for policy in policies
        for candidate in policy_candidates(policy)
        for bench in settings.pareto_benchmarks
        for seed in range(settings.pareto_traces)
    ]


def _make_spec(spec_id, title, policies):
    return ExperimentSpec(
        id=spec_id,
        title=title,
        grid=lambda settings: _pareto_grid(settings, policies),
        reduce=lambda settings, fetch: _pareto_result(
            settings, fetch, policies
        ),
        render=lambda result: render_pareto(title, result),
        in_report=False,
        archive=True,
    )


def pareto_policy_spec(policy):
    """The single-policy threshold sweep: front within one policy's
    tuning grid."""
    return _make_spec(
        f"pareto_{policy}",
        f"Pareto sweep: {policy} tunables (energy vs forward progress)",
        (policy,),
    )


def pareto_summary_spec(policies=TUNED_POLICIES):
    """The cross-policy sweep: one front over every policy's grid per
    NVM technology — the design-space map the paper's fixed thresholds
    sample."""
    return _make_spec(
        "pareto_summary",
        "Pareto summary: tuned backup policies across NVM technologies",
        tuple(policies),
    )


def pareto_specs():
    """Every Pareto spec, in registration order."""
    return [pareto_policy_spec(policy) for policy in TUNED_POLICIES] + [
        pareto_summary_spec()
    ]
