"""Continuous-power reference runner and flat memory."""

import pytest

from repro.asm import assemble
from repro.sim.reference import FlatMemory, run_reference


def test_flat_memory_word_and_byte():
    mem = FlatMemory(0x1000)
    mem.store(0x100, 0xAABBCCDD, 4)
    assert mem.load(0x100, 4) == (0xAABBCCDD, 0)
    assert mem.load(0x101, 1) == (0xCC, 0)
    mem.store(0x102, 0x11, 1)
    assert mem.load(0x100, 4) == (0xAA11CCDD, 0)


def test_flat_memory_bounds():
    mem = FlatMemory(0x100)
    with pytest.raises(ValueError):
        mem.load(0x100, 4)
    with pytest.raises(ValueError):
        mem.store(-1, 0, 4)


def test_flat_memory_image_and_peeks():
    mem = FlatMemory(0x1000)
    mem.load_image(0x10, b"\x01\x02\x03\x04")
    assert mem.peek_word(0x10) == 0x04030201
    assert mem.peek_bytes(0x10, 4) == b"\x01\x02\x03\x04"


def test_run_reference_produces_final_memory():
    prog = assemble(
        ".data\nx: .word 5\n.text\nmain:\n"
        "la r0, x\nldr r1, [r0, #0]\nadd r1, r1, #10\nstr r1, [r0, #0]\nhalt\n"
    )
    result = run_reference(prog)
    assert result.word_at(prog.symbol("x")) == 15
    assert result.words_at(prog.symbol("x"), 1) == [15]
    assert result.instructions == 6
    assert result.cycles >= result.instructions


def test_run_reference_timeout():
    prog = assemble("main: b main\n")
    with pytest.raises(RuntimeError, match="exceeded"):
        run_reference(prog, max_steps=100)
