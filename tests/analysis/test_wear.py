"""Wear analysis: distribution statistics and the endurance claim."""

import pytest

from repro.analysis.wear import gini_coefficient, wear_comparison, wear_profile


def test_gini_of_uniform_is_zero():
    assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)


def test_gini_of_concentrated_is_high():
    assert gini_coefficient([100, 1, 1, 1]) > 0.6


def test_gini_edge_cases():
    assert gini_coefficient([]) == 0.0
    assert gini_coefficient([0, 0]) == 0.0
    assert gini_coefficient([7]) == pytest.approx(0.0)


def test_gini_monotone_in_concentration():
    assert gini_coefficient([10, 10]) < gini_coefficient([19, 1])


def test_wear_profile_fields():
    profile = wear_profile("qsort", "clank")
    assert profile.total_writes > 0
    assert profile.locations_written > 0
    assert profile.max_wear >= profile.mean_wear
    assert 0.0 <= profile.gini <= 1.0
    assert "qsort" in profile.summary()


def test_nvmr_levels_wear_on_violation_heavy_benchmark():
    """Section 6.5: renaming reduces maximum per-location wear and
    flattens the write distribution vs Clank."""
    comparison = wear_comparison("qsort")
    assert comparison["max_wear_reduction_percent"] > 30.0
    assert comparison["nvmr"].max_wear < comparison["clank"].max_wear
    # Renaming spreads writes across more distinct locations.
    assert (
        comparison["nvmr"].locations_written
        > comparison["clank"].locations_written
    )
