"""Content-addressed on-disk store for recorded execution traces.

Lives alongside the persistent run cache
(:mod:`repro.analysis.runcache`): where the run cache memoizes one
*(benchmark, config, seed)* result, the trace store memoizes the far
more expensive raw ingredient — the program's natural instruction
stream — which every configuration of a sweep shares.

Layout
------
Two levels, like a tiny object store:

``blobs/<content-digest>.npz``
    The trace payload, named by the SHA-256 of its array contents.
    A program's natural execution does not depend on the harvest
    trace seed, so the key entries for every seed of a program point
    at the *same* blob — stored once.

``keys/<key-digest>.json``
    The lookup entry for one ``(program hash, seed, TRACE_VERSION)``
    triple, recording which blob it resolves to.  The digest covers
    :data:`~repro.sim.trace.TRACE_VERSION`, so a checkout with a newer
    trace encoding simply misses old entries — stale-version traces
    are ignored, never silently replayed.  Blob payloads additionally
    carry their version and are re-validated on load.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on a key overwrite each other with identical bytes.

Environment knobs
-----------------
``REPRO_TRACE_DIR``
    Store directory (default ``<REPRO_CACHE_DIR>/traces``).
``REPRO_RUN_CACHE=0``
    Disables the trace store together with the run cache (traces are
    still recorded in-process; they just aren't persisted).
"""

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import runcache
from repro.sim.trace import TRACE_VERSION, ExecutionTrace

#: Bumped when the on-disk layout itself (not the trace semantics)
#: changes.
_FORMAT_VERSION = 1

_EMPTY = b""


def enabled():
    """The store shares the run cache's kill switch."""
    return runcache.enabled()


def store_dir():
    """The trace store directory as a :class:`~pathlib.Path`."""
    override = os.environ.get("REPRO_TRACE_DIR", "")
    if override:
        return Path(override)
    return runcache.cache_dir() / "traces"


def program_hash(benchmark):
    """SHA-256 of the benchmark's source (None for unknown workloads)."""
    return runcache._program_hash(benchmark)


def entry_key(program_hash, trace_seed):
    """Digest naming the key file for one (program, seed, version)."""
    material = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "trace_version": TRACE_VERSION,
            "program": program_hash,
            "trace_seed": trace_seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _key_path(key):
    return store_dir() / "keys" / f"{key}.json"


def _blob_path(digest):
    return store_dir() / "blobs" / f"{digest}.npz"


def _atomic_write(path, data):
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ------------------------------------------------------- serialization
def _trace_to_bytes(trace):
    buffer = io.BytesIO()
    arrays = {
        "meta": np.asarray(
            [trace.version, trace.steps, int(trace.halted)], dtype=np.int64
        ),
        "indices": trace.indices,
        "mem_addrs": trace.mem_addrs,
        "store_values": trace.store_values,
    }
    if trace.cycles is not None:
        arrays["cycles"] = trace.cycles
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def _trace_from_bytes(data):
    with np.load(io.BytesIO(data)) as archive:
        meta = archive["meta"]
        version, steps, halted = (int(v) for v in meta)
        if version != TRACE_VERSION:
            return None  # stale encoding: a miss, never a silent replay
        return ExecutionTrace(
            version=version,
            steps=steps,
            halted=bool(halted),
            indices=archive["indices"],
            mem_addrs=archive["mem_addrs"],
            store_values=archive["store_values"],
            cycles=archive["cycles"] if "cycles" in archive.files else None,
        )


# -------------------------------------------------------------- access
def contains(program_hash, trace_seed):
    """Whether the store holds a current-version trace for this key."""
    if not enabled() or program_hash is None:
        return False
    key_path = _key_path(entry_key(program_hash, trace_seed))
    try:
        entry = json.loads(key_path.read_text())
    except (OSError, ValueError):
        return False
    return (
        entry.get("version") == TRACE_VERSION
        and isinstance(entry.get("blob"), str)
        and _blob_path(entry["blob"]).is_file()
    )


def fetch(program_hash, trace_seed):
    """Load a stored trace, or None on miss/disabled/stale/corrupt."""
    if not enabled() or program_hash is None:
        return None
    key_path = _key_path(entry_key(program_hash, trace_seed))
    try:
        entry = json.loads(key_path.read_text())
    except (OSError, ValueError):
        return None
    if entry.get("version") != TRACE_VERSION:
        return None
    blob = entry.get("blob")
    if not isinstance(blob, str):
        return None
    try:
        data = _blob_path(blob).read_bytes()
    except OSError:
        return None
    try:
        return _trace_from_bytes(data)
    except (KeyError, ValueError, OSError):
        return None  # corrupt blob; treat as a miss


def store(program_hash, trace_seed, trace):
    """Persist a trace; no-op if disabled or the program is unknown."""
    if not enabled() or program_hash is None:
        return
    digest = hashlib.sha256(trace.digest_material()).hexdigest()
    blob_path = _blob_path(digest)
    if not blob_path.is_file():  # content-addressed: dedup across seeds
        _atomic_write(blob_path, _trace_to_bytes(trace))
    entry = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "version": trace.version,
            "program": program_hash,
            "trace_seed": trace_seed,
            "blob": digest,
        },
        sort_keys=True,
    )
    _atomic_write(_key_path(entry_key(program_hash, trace_seed)), entry.encode())


def clear_store():
    """Delete every key and blob; returns the number of files removed."""
    removed = 0
    directory = store_dir()
    for sub, pattern in (("keys", "*.json"), ("blobs", "*.npz")):
        folder = directory / sub
        if not folder.is_dir():
            continue
        for path in folder.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def prune_stale():
    """Evict entries whose recorded version is stale and blobs no key
    references; returns the number of files removed."""
    removed = 0
    directory = store_dir()
    keys_dir = directory / "keys"
    live_blobs = set()
    if keys_dir.is_dir():
        for path in keys_dir.glob("*.json"):
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                entry = None
            if entry is not None and entry.get("version") == TRACE_VERSION:
                blob = entry.get("blob")
                if isinstance(blob, str):
                    live_blobs.add(blob)
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    blobs_dir = directory / "blobs"
    if blobs_dir.is_dir():
        for path in blobs_dir.glob("*.npz"):
            if path.stem in live_blobs:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
