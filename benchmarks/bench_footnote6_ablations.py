"""Footnote 6 + design-choice ablations (DESIGN.md Section 5).

* Footnote 6: the paper's cached GBF/LBF version of Clank vs Hicks'
  original buffer-based Clank, at equal on-chip storage.  The paper
  reports 11% better energy for the cached version on GCC-optimised
  binaries; with our -O0-style codegen the gap is much larger (see the
  clank_original module docstring), but the direction reproduces.
* GBF-size ablation: Table 2 fixes 8 one-bit entries; smaller filters
  alias more and force conservative renames/backups.
* Cache-size ablation: Table 2 fixes 256 B.
"""

from repro.analysis import (
    ablation_cache_size,
    ablation_gbf_bits,
    footnote6_original_clank,
    format_series,
)

from conftest import run_once


def test_footnote6_cached_clank_beats_original(benchmark, settings, report):
    out = run_once(benchmark, footnote6_original_clank, settings)
    report(
        "footnote6_original_clank",
        format_series(
            "Footnote 6: % energy the cached Clank saves vs original Clank",
            out,
        ),
    )
    # Direction: the cached version wins on every sweep benchmark.
    assert all(v > 0 for v in out.values())


def test_ablation_gbf_bits(benchmark, settings, report):
    series = run_once(benchmark, ablation_gbf_bits, settings)
    report(
        "ablation_gbf_bits",
        format_series(
            "Ablation: NvMR % energy saved vs Clank, by GBF size (bits)",
            series,
        ),
    )
    # The savings comparison is robust to GBF sizing: NvMR wins at
    # every size (aliasing hurts both architectures).
    assert all(v > 0 for v in series.values())


def test_ablation_cache_size(benchmark, settings, report):
    series = run_once(benchmark, ablation_cache_size, settings)
    report(
        "ablation_cache_size",
        format_series(
            "Ablation: NvMR % energy saved vs Clank, by data-cache size (B)",
            series,
        ),
    )
    assert all(v > 0 for v in series.values())


def test_ablation_free_list_discipline(benchmark, settings, report):
    from repro.analysis import ablation_free_list_discipline

    out = run_once(benchmark, ablation_free_list_discipline, settings)
    lines = ["Ablation: free-list discipline (reserved-region endurance)",
             "==========================================================="]
    for mode, stats in out.items():
        lines.append(
            f"  {mode}: max reserved-region wear = "
            f"{stats['max_reserved_wear']:.1f} writes, total energy = "
            f"{stats['total_energy_uj']:.1f} uJ"
        )
    report("ablation_free_list", "\n".join(lines))
    # The queue wear-levels; a stack concentrates writes.  Energy is
    # unchanged (it is purely an endurance decision).
    assert out["fifo"]["max_reserved_wear"] < out["lifo"]["max_reserved_wear"]
    assert abs(
        out["fifo"]["total_energy_uj"] - out["lifo"]["total_energy_uj"]
    ) < 0.01 * out["fifo"]["total_energy_uj"]
