"""The intermittent platform: CPU + architecture + policy + power supply.

The run loop models the paper's execution environment:

* an **active period** starts with the supercapacitor charged to the
  budget the harvest trace allows, restores the last checkpoint, and
  executes instructions;
* every energy event draws from the capacitor; when a draw cannot be
  paid, :class:`~repro.energy.accounting.PowerFailure` unwinds the
  current instruction — volatile state is lost, everything charged
  since the last persisted backup becomes *dead energy*, and the device
  recharges and restores;
* policies may back up mid-period (watchdog) or back up and shut down
  cleanly (JIT / Spendthrift);
* architectures may back up for structural reasons at any point;
* the run ends when the program halts *and* a final backup has
  persisted its outputs.
"""

import os
from dataclasses import dataclass, field

from repro.arch import make_architecture
from repro.arch.base import BackupReason
from repro.energy.accounting import EnergyLedger, PowerFailure
from repro.energy.capacitor import CAPACITOR_PRESETS, Supercapacitor
from repro.energy.model import NVM_TECHNOLOGIES, EnergyModel
from repro.energy.traces import HarvestTrace
from repro.cpu.core import Core, ExecutionError
from repro.cpu.fastcore import FastCore
from repro.mem.nvm import NvmFlash
from repro.policies import make_policy
from repro.policies.base import BackupPolicy, PolicyAction
from repro.sim.results import RunResult


class SimulationError(Exception):
    """The simulation could not make progress (timeout / livelock)."""


def _fast_default():
    """Default for :attr:`PlatformConfig.fast`; ``REPRO_FAST=0`` forces
    the reference interpreter process-wide (A/B timing, debugging)."""
    return os.environ.get("REPRO_FAST", "1") not in ("0", "")


@dataclass
class PlatformConfig:
    """All knobs of one experiment configuration (Table 2 defaults)."""

    arch: str = "clank"
    policy: str = "jit"
    #: NVM technology preset: "flash" (default) or "fram" (footnote 8).
    nvm_technology: str = "flash"
    capacitor: str = "100mF"
    capacitor_energy: float = None  # overrides the preset when set
    cache_size: int = 256
    cache_assoc: int = 8
    block_size: int = 16
    gbf_bits: int = 8
    # NvMR structures
    mtc_entries: int = 512
    mtc_assoc: int = 8
    map_table_entries: int = 4096
    free_list_size: int = None  # None -> worst case
    free_list_mode: str = "fifo"  # "lifo" only for the wear ablation
    reclaim: bool = True
    # HOOP structures (Table 4 lists 128 / 2048 for the paper's
    # full-size workloads; scaled 4x down with our working sets so the
    # buffer exerts the same backup pressure — see EXPERIMENTS.md)
    oop_buffer_entries: int = 32
    oop_region_slots: int = 512
    # Hibernus SRAM model (extension architecture)
    sram_limit_words: int = 4096
    sram_floor_words: int = 256
    # Original Clank structures (footnote 6 comparison)
    read_first_entries: int = 24
    write_first_entries: int = 24
    write_buffer_entries: int = 16
    # Policy parameters
    watchdog_period: int = 8000
    policy_kwargs: dict = field(default_factory=dict)
    # Limits
    max_steps: int = 5_000_000
    max_periods: int = 200_000
    #: Use the fast-path execution engine (pre-decoded dispatch + policy
    #: quanta + batched ledger classification).  Results are bit-identical
    #: to the reference interpreter; set ``fast=False`` (or export
    #: ``REPRO_FAST=0`` to flip the default process-wide) to run the
    #: seed per-instruction loop (the differential suite compares both).
    fast: bool = field(default_factory=_fast_default)

    def arch_kwargs(self):
        common = dict(
            cache_size=self.cache_size,
            cache_assoc=self.cache_assoc,
            block_size=self.block_size,
        )
        if self.arch in ("clank", "ideal"):
            return dict(common, gbf_bits=self.gbf_bits)
        if self.arch == "nvmr":
            return dict(
                common,
                gbf_bits=self.gbf_bits,
                mtc_entries=self.mtc_entries,
                mtc_assoc=self.mtc_assoc,
                map_table_entries=self.map_table_entries,
                free_list_size=self.free_list_size,
                free_list_mode=self.free_list_mode,
                reclaim=self.reclaim,
            )
        if self.arch == "hoop":
            return dict(
                common,
                oop_buffer_entries=self.oop_buffer_entries,
                oop_region_slots=self.oop_region_slots,
            )
        if self.arch == "hibernus":
            return dict(
                sram_limit_words=self.sram_limit_words,
                sram_floor_words=self.sram_floor_words,
            )
        if self.arch == "clank_original":
            return dict(
                read_first_entries=self.read_first_entries,
                write_first_entries=self.write_first_entries,
                write_buffer_entries=self.write_buffer_entries,
            )
        return common

    def make_policy(self):
        if not isinstance(self.policy, str):
            # A user-supplied BackupPolicy instance (see
            # examples/custom_policy.py).
            return self.policy
        kwargs = dict(self.policy_kwargs)
        if self.policy == "watchdog" and "period" not in kwargs:
            kwargs["period"] = self.watchdog_period
        return make_policy(self.policy, **kwargs)

    def capacitor_budget(self):
        if self.capacitor_energy is not None:
            return self.capacitor_energy
        return CAPACITOR_PRESETS[self.capacitor]


def default_config(**overrides):
    """Table 2's configuration, with keyword overrides."""
    return PlatformConfig(**overrides)


class Platform:
    """One program wired to one architecture/policy/trace combination."""

    __slots__ = (
        "program",
        "config",
        "trace",
        "benchmark_name",
        "nvm",
        "capacitor",
        "ledger",
        "energy",
        "arch",
        "core",
        "policy",
        "active_cycles",
        "off_cycles",
        "active_periods",
        "power_failures",
        "shutdowns",
        "events",
        "_cpu_cycle_energy",
        "_leak",
        "_overhead_leak",
        "_injector",
    )

    def __init__(self, program, config=None, trace=None, benchmark_name=""):
        self.program = program
        self.config = config or PlatformConfig()
        self.trace = trace if trace is not None else HarvestTrace(0)
        # A fault-injecting trace (repro.energy.faultinject) doubles as
        # an execution-boundary observer: the run loops call its on_*
        # hooks, which raise PowerFailure at scheduled boundaries.
        self._injector = (
            self.trace
            if getattr(self.trace, "is_fault_injector", False)
            else None
        )
        self.benchmark_name = benchmark_name or "program"
        layout = program.layout

        self.nvm = NvmFlash(layout.flash_size)
        self.nvm.load_image(layout.data_base, program.data)
        self.capacitor = Supercapacitor(self.config.capacitor_budget())
        self.ledger = EnergyLedger(self.capacitor)
        try:
            self.energy = NVM_TECHNOLOGIES[self.config.nvm_technology]()
        except KeyError:
            raise ValueError(
                f"unknown NVM technology {self.config.nvm_technology!r}; "
                f"options: {sorted(NVM_TECHNOLOGIES)}"
            ) from None
        self.arch = make_architecture(
            self.config.arch,
            self.nvm,
            self.ledger,
            self.energy,
            layout,
            **self.config.arch_kwargs(),
        )
        core_cls = FastCore if self.config.fast else Core
        self.core = core_cls(program, self.arch)
        self.arch.attach_core(self.core)
        self.policy = self.config.make_policy()

        self.active_cycles = 0
        self.off_cycles = 0
        self.active_periods = 0
        self.power_failures = 0
        self.shutdowns = 0
        #: Chronological run events: (active_cycle, kind, detail).
        #: kinds: period / backup:<reason> / failure / shutdown / halt.
        self.events = []
        self._install_event_recorder()

        self._cpu_cycle_energy = self.energy.cpu_cycle
        self._leak = self.arch.leakage_per_cycle()
        self._overhead_leak = getattr(self.arch, "overhead_leakage_per_cycle", None)
        self._overhead_leak = self._overhead_leak() if self._overhead_leak else 0.0

    def _install_event_recorder(self):
        original_backup = self.arch.backup
        injector = self._injector

        if injector is None:

            def recorded_backup(reason):
                original_backup(reason)
                self.events.append((self.active_cycles, "backup", reason))

        else:
            # Mid-backup injection: every backup charges its full cost
            # before mutating NVM (interrupted double-buffered commit),
            # so failing the attempt *before* the call models a power
            # loss at any point inside the backup — the previous
            # checkpoint stays committed either way.
            def recorded_backup(reason):
                injector.on_backup_attempt()
                original_backup(reason)
                self.events.append((self.active_cycles, "backup", reason))

        self.arch.backup = recorded_backup

    # ------------------------------------------------------ power loop
    def _start_period(self):
        if self.active_periods >= self.config.max_periods:
            raise SimulationError(
                f"exceeded {self.config.max_periods} active periods; "
                "the configuration cannot make forward progress"
            )
        conditions = self.trace.next_period()
        self.capacitor.recharge(self.capacitor.capacity * conditions.budget_fraction)
        self.off_cycles += conditions.recharge_cycles
        self.active_periods += 1
        self.events.append(
            (self.active_cycles, "period", round(conditions.budget_fraction, 3))
        )
        self.policy.on_period_start(self, conditions)

    def _recharge_and_restore(self):
        """Sleep through recharge, then restore the last checkpoint.

        A pathologically small budget can fail mid-restore; the device
        then sleeps again (the period guard bounds this).
        """
        while True:
            self._start_period()
            try:
                self.arch.restore()
                if self._injector is not None:
                    # First-instant-after-restore injection: the restore
                    # completed, but power dies before anything retires.
                    self._injector.on_restore()
                self.ledger.commit_epoch()
                return
            except PowerFailure:
                self.ledger.fail_epoch()
                self.arch.on_power_failure()

    def _power_failure(self):
        self.power_failures += 1
        self.events.append((self.active_cycles, "failure", None))
        self.ledger.fail_epoch()
        self.arch.on_power_failure()
        self._recharge_and_restore()

    def _shutdown(self):
        """Graceful end of an active period (after a policy backup)."""
        self.shutdowns += 1
        self.events.append((self.active_cycles, "shutdown", None))
        self.arch.on_power_failure()  # volatile state is lost while off
        self._recharge_and_restore()

    # ------------------------------------------------------------ run
    def run(self):
        """Execute the program to completion; returns a RunResult."""
        arch = self.arch
        self.policy.reset(self)
        # Flashing the device includes its entry state: commit a free
        # factory checkpoint so a restore target always exists, then
        # charge a real initial backup once powered.
        self.nvm.commit_checkpoint(arch.snapshot_payload())
        self._start_period()
        try:
            arch.backup(BackupReason.INITIAL)
        except PowerFailure:
            self._power_failure()
        # The inline fast loop dispatches straight to the pre-decoded
        # closure table, which bypasses Core.step and therefore cannot
        # honour retire hooks (instruction tracing, the task policy) —
        # those run on the reference loop.  Hooks are installed by
        # policy.reset() / tracer attachment, both of which have
        # happened by this point.
        if (
            self.config.fast
            and self.core.on_retire is None
            and isinstance(self.core, FastCore)
        ):
            self._run_fast()
        else:
            self._run_reference()
        return self._result()

    def _run_reference(self):
        """The seed per-instruction loop: policy consulted every step."""
        core = self.core
        policy = self.policy
        ledger = self.ledger
        arch = self.arch
        injector = self._injector
        step_energy = self._cpu_cycle_energy + self._leak
        steps = 0
        max_steps = self.config.max_steps
        while True:
            if core.halted:
                try:
                    arch.backup(BackupReason.FINAL)
                    break
                except PowerFailure:
                    self._power_failure()
                    continue
            if steps >= max_steps:
                raise SimulationError(f"exceeded {max_steps} instructions")
            try:
                cycles = core.step()
                steps += 1
                self.active_cycles += cycles
                ledger.charge("forward", cycles * step_energy)
                if self._overhead_leak:
                    ledger.charge("forward_overhead", cycles * self._overhead_leak)
                if injector is not None:
                    injector.on_step()
                action = policy.after_step(self, cycles)
                if action == PolicyAction.BACKUP:
                    arch.backup(BackupReason.POLICY)
                    policy.on_backup(self)
                elif action == PolicyAction.SHUTDOWN:
                    arch.backup(BackupReason.POLICY)
                    policy.on_backup(self)
                    self._shutdown()
            except PowerFailure:
                self._power_failure()

    def _run_fast(self):
        """Dispatch to the specialized fast loop.

        The per-cycle overhead leakage (NvMR's MTC) is constant per run,
        so the loop is specialized once here instead of testing it every
        step: architectures without it run :meth:`_run_fast_forward`,
        which has the whole overhead-charge block removed; the rest run
        :meth:`_run_fast_overhead`.  The two loops are line-for-line
        identical apart from that block (keep them in sync; the
        differential suite exercises both via clank and nvmr).
        """
        if self._overhead_leak:
            self._run_fast_overhead()
        else:
            self._run_fast_forward()

    def _run_fast_forward(self):
        """The fast loop: identical observable behavior to
        :meth:`_run_reference`, restructured for speed.

        * instruction dispatch goes straight to the pre-decoded closure
          table (:class:`~repro.cpu.fastcore.FastCore`) — :meth:`run`
          only selects this loop when no retire hook needs the
          ``Core.step`` path;
        * the two hot ledger categories are charged through their direct
          entry points (same capacitor draws, same committed totals);
        * when the policy grants a quantum guard (see
          :meth:`~repro.policies.base.BackupPolicy.decide`) the
          per-step policy call is skipped.  Energy-floor guards (JIT)
          keep a per-step safety test: skip while the post-charge
          capacitor energy stays above a floor that grows by the
          architecture's estimate-growth bound per step, so a
          violation backup that drains charge mid-window revokes the
          guard immediately.  Cycle-budget guards (watchdog,
          Spendthrift) ignore energy entirely: they skip on a pure
          cycle count until the granted budget is exhausted, then
          resync the policy's counter with the fully skipped steps and
          consult it exactly for the revoking step.  Revocation (or a
          power failure) returns to the exact per-instruction path, so
          decisions near any boundary match the reference loop bit for
          bit.

        This variant is for architectures with no per-cycle overhead
        leakage; :meth:`_run_fast_overhead` carries the extra charge.
        """
        core = self.core
        policy = self.policy
        ledger = self.ledger
        arch = self.arch
        capacitor = self.capacitor
        backup = arch.backup
        injector = self._injector
        charge_forward = ledger.charge_forward
        after_step = policy.after_step
        # Policies that don't override decide() (task, user policies)
        # are called through plain after_step, exactly like the
        # reference loop; anything else goes through decide().
        use_decide = (
            getattr(type(policy), "decide", None) is not BackupPolicy.decide
            and getattr(policy, "decide", None) is not None
        )
        decide = policy.decide if use_decide else None
        ops = core._ops
        code_base = core._code_base
        rf = core.rf
        step_energy = self._cpu_cycle_energy + self._leak
        steps = 0
        # Guard mode: 0 = consult the policy every step, 1 = energy
        # floor (per-step safety test), 2 = cycle budget (blind count).
        gmode = 0
        floor = 0.0
        growth = 0.0
        budget = 0
        skipped = 0
        resync = None
        inf = float("inf")
        max_steps = self.config.max_steps
        none_action = PolicyAction.NONE
        backup_action = PolicyAction.BACKUP
        shutdown_action = PolicyAction.SHUTDOWN
        try:
            while True:
                if core.halted:
                    try:
                        backup(BackupReason.FINAL)
                        break
                    except PowerFailure:
                        self._power_failure()
                        gmode = 0
                        continue
                if steps >= max_steps:
                    raise SimulationError(f"exceeded {max_steps} instructions")
                try:
                    try:
                        fn = ops[(rf.pc - code_base) >> 2]
                    except IndexError:
                        raise ExecutionError(
                            f"pc outside code: {rf.pc:#x}"
                        ) from None
                    cycles = fn()
                    steps += 1
                    self.active_cycles += cycles
                    # Per-step CPU + leakage charge, inlined from
                    # EnergyLedger.charge_forward: the common case (slot
                    # pinned, charge affordable) runs on a local copy of
                    # the capacitor level — the same compares and
                    # subtractions, one attribute store; anything else
                    # delegates to the ledger, which redoes the exact
                    # same transition.
                    energy = capacitor.energy
                    amount = cycles * step_energy
                    if ledger._fwd_touched and energy >= amount:
                        ledger._fwd_pending += amount
                        energy -= amount
                        capacitor.energy = energy
                    else:
                        charge_forward(amount)
                        energy = capacitor.energy
                    if injector is not None:
                        injector.on_step()
                    if gmode:
                        if gmode == 1:
                            # Energy floor: the post-charge test is the
                            # safety net — any mid-window drain (a
                            # violation or structural backup) revokes
                            # the guard, and the revoking step gets the
                            # exact decide().  ``energy`` equals the
                            # post-charge capacitor level on every path
                            # out of the charge block above.
                            floor += growth
                            if energy > floor:
                                continue
                        else:
                            # Cycle budget: every skipped step was
                            # provably a NONE decision; at revoke,
                            # catch the policy's counters up with the
                            # fully skipped steps (the revoking step's
                            # cycles flow through decide() below).
                            skipped += cycles
                            if skipped < budget:
                                continue
                            resync(skipped - cycles)
                        gmode = 0
                    if decide is not None:
                        action, guard = decide(self, cycles)
                    else:
                        action = after_step(self, cycles)
                        guard = None
                    if action is none_action:
                        if guard is not None:
                            floor, growth, budget, resync = guard
                            if budget == inf:
                                gmode = 1
                            elif resync is not None:
                                skipped = 0
                                gmode = 2
                    elif action is backup_action:
                        backup(BackupReason.POLICY)
                        policy.on_backup(self)
                    elif action is shutdown_action:
                        backup(BackupReason.POLICY)
                        policy.on_backup(self)
                        self._shutdown()
                except PowerFailure:
                    self._power_failure()
                    gmode = 0
        finally:
            core.instructions_retired += steps

    def _run_fast_overhead(self):
        """:meth:`_run_fast_forward` plus the per-cycle overhead-leakage
        charge (NvMR's MTC standby power).  See that method's docstring;
        everything else is line-for-line identical."""
        core = self.core
        policy = self.policy
        ledger = self.ledger
        arch = self.arch
        capacitor = self.capacitor
        backup = arch.backup
        injector = self._injector
        charge_forward = ledger.charge_forward
        charge_overhead = ledger.charge_forward_overhead
        after_step = policy.after_step
        use_decide = (
            getattr(type(policy), "decide", None) is not BackupPolicy.decide
            and getattr(policy, "decide", None) is not None
        )
        decide = policy.decide if use_decide else None
        ops = core._ops
        code_base = core._code_base
        rf = core.rf
        step_energy = self._cpu_cycle_energy + self._leak
        overhead_leak = self._overhead_leak
        steps = 0
        gmode = 0
        floor = 0.0
        growth = 0.0
        budget = 0
        skipped = 0
        resync = None
        inf = float("inf")
        max_steps = self.config.max_steps
        none_action = PolicyAction.NONE
        backup_action = PolicyAction.BACKUP
        shutdown_action = PolicyAction.SHUTDOWN
        try:
            while True:
                if core.halted:
                    try:
                        backup(BackupReason.FINAL)
                        break
                    except PowerFailure:
                        self._power_failure()
                        gmode = 0
                        continue
                if steps >= max_steps:
                    raise SimulationError(f"exceeded {max_steps} instructions")
                try:
                    try:
                        fn = ops[(rf.pc - code_base) >> 2]
                    except IndexError:
                        raise ExecutionError(
                            f"pc outside code: {rf.pc:#x}"
                        ) from None
                    cycles = fn()
                    steps += 1
                    self.active_cycles += cycles
                    # Forward charge then overhead charge, each inlined
                    # from its ledger fast path; the overhead draw must
                    # observe the capacitor level left by the forward
                    # draw, exactly as two sequential charge() calls do.
                    energy = capacitor.energy
                    amount = cycles * step_energy
                    if ledger._fwd_touched and energy >= amount:
                        ledger._fwd_pending += amount
                        energy -= amount
                        amount = cycles * overhead_leak
                        if ledger._ovh_touched and energy >= amount:
                            ledger._ovh_pending += amount
                            energy -= amount
                            capacitor.energy = energy
                        else:
                            capacitor.energy = energy
                            charge_overhead(amount)
                            energy = capacitor.energy
                    else:
                        charge_forward(amount)
                        charge_overhead(cycles * overhead_leak)
                        energy = capacitor.energy
                    if injector is not None:
                        injector.on_step()
                    if gmode:
                        if gmode == 1:
                            floor += growth
                            if energy > floor:
                                continue
                        else:
                            skipped += cycles
                            if skipped < budget:
                                continue
                            resync(skipped - cycles)
                        gmode = 0
                    if decide is not None:
                        action, guard = decide(self, cycles)
                    else:
                        action = after_step(self, cycles)
                        guard = None
                    if action is none_action:
                        if guard is not None:
                            floor, growth, budget, resync = guard
                            if budget == inf:
                                gmode = 1
                            elif resync is not None:
                                skipped = 0
                                gmode = 2
                    elif action is backup_action:
                        backup(BackupReason.POLICY)
                        policy.on_backup(self)
                    elif action is shutdown_action:
                        backup(BackupReason.POLICY)
                        policy.on_backup(self)
                        self._shutdown()
                except PowerFailure:
                    self._power_failure()
                    gmode = 0
        finally:
            core.instructions_retired += steps

    # ---------------------------------------------------------- result
    def _result(self):
        stats = self.arch.stats
        cache = getattr(self.arch, "cache", None)
        policy_name = (
            self.config.policy
            if isinstance(self.config.policy, str)
            else getattr(self.policy, "name", type(self.policy).__name__)
        )
        return RunResult(
            benchmark=self.benchmark_name,
            arch=self.config.arch,
            policy=policy_name,
            breakdown=self.ledger.committed,
            instructions=self.core.instructions_retired,
            active_cycles=self.active_cycles,
            off_cycles=self.off_cycles,
            active_periods=self.active_periods,
            power_failures=self.power_failures,
            shutdowns=self.shutdowns,
            backups=stats.backups,
            backups_by_reason=dict(stats.backups_by_reason),
            restores=stats.restores,
            violations=stats.violations,
            renames=stats.renames,
            reclaims=stats.reclaims,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            nvm_reads=self.nvm.reads,
            nvm_writes=self.nvm.writes,
            max_wear=self.nvm.max_wear,
        )

    # ----------------------------------------------------- inspection
    def read_word(self, addr):
        """Read program-visible memory after a run, resolving any
        renaming/redo indirection (harness use; no energy charged)."""
        return self.arch.debug_read_word(addr)

    def read_words(self, addr, count):
        return [self.read_word(addr + 4 * i) for i in range(count)]
