"""A task-boundary backup policy (paper Section 2.2 / Figure 2c).

Software systems such as DINO and Chain [7, 22, 26] decompose programs
into programmer-defined atomic tasks and checkpoint at task boundaries.
We approximate task boundaries with *function-call* boundaries: a
backup is taken when a ``bl`` (call) retires, rate-limited by a minimum
inter-backup distance so that leaf-helper-heavy code does not
checkpoint every few instructions — mirroring the paper's observation
that "tasks are sized much smaller than the available energy supply",
which is exactly why these schemes back up more than necessary.

Correctness is the architecture's job (Clank/NvMR/HOOP are crash-
consistent under *any* backup placement); the policy only decides the
energy bill, like every other policy here.
"""

from repro.isa.instructions import Opcode
from repro.policies.base import BackupPolicy, PolicyAction, TunableSpec

#: Minimum cycles between task backups (task granularity knob).
DEFAULT_MIN_TASK_CYCLES = 1500
#: Maximum task length: a call-free stretch longer than this backs up
#: anyway.  Task systems *require* the programmer to split such code
#: ("task decomposition is static and often needs detailed knowledge of
#: the intermittent hardware"); a task that outlives the energy supply
#: can never commit, so this models the mandatory loop splitting.
DEFAULT_MAX_TASK_CYCLES = 6000


class TaskBoundaryPolicy(BackupPolicy):
    name = "task"

    tunables = (
        TunableSpec(
            name="min_task_cycles",
            default=DEFAULT_MIN_TASK_CYCLES,
            grid=(500, 1000, 3000, 6000),
            description=(
                "minimum cycles between task backups (task granularity); "
                "small values checkpoint at almost every call, large "
                "values coalesce helper-heavy code into bigger tasks"
            ),
        ),
        TunableSpec(
            name="max_task_cycles",
            default=DEFAULT_MAX_TASK_CYCLES,
            grid=(3000, 12000),
            description=(
                "forced loop-split bound: a call-free stretch longer "
                "than this backs up anyway, modeling mandatory task "
                "decomposition of long loops"
            ),
        ),
    )

    def __init__(
        self,
        min_task_cycles=DEFAULT_MIN_TASK_CYCLES,
        max_task_cycles=DEFAULT_MAX_TASK_CYCLES,
    ):
        if min_task_cycles <= 0:
            raise ValueError("min_task_cycles must be positive")
        if max_task_cycles < min_task_cycles:
            raise ValueError("max_task_cycles must be >= min_task_cycles")
        self.min_task_cycles = min_task_cycles
        self.max_task_cycles = max_task_cycles
        self._since_backup = 0
        self._boundary_seen = False

    def reset(self, platform):
        self._since_backup = 0
        self._boundary_seen = False
        # Chain rather than replace any existing retire hook (e.g. an
        # attached InstructionTracer).
        previous = platform.core.on_retire
        if previous is None:
            platform.core.on_retire = self._on_retire
        else:
            def chained(pc, instr, cycles, _prev=previous, _mine=self._on_retire):
                _prev(pc, instr, cycles)
                _mine(pc, instr, cycles)

            platform.core.on_retire = chained

    def _on_retire(self, pc, instr, cycles):
        if instr.op is Opcode.BL:
            self._boundary_seen = True

    def on_period_start(self, platform, conditions):
        self._since_backup = 0
        self._boundary_seen = False

    def on_backup(self, platform):
        self._since_backup = 0
        self._boundary_seen = False

    def after_step(self, platform, cycles):
        self._since_backup += cycles
        if self._boundary_seen and self._since_backup >= self.min_task_cycles:
            return PolicyAction.BACKUP
        if self._since_backup >= self.max_task_cycles:
            return PolicyAction.BACKUP  # forced loop split
        return PolicyAction.NONE
