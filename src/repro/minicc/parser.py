"""Recursive-descent parser for mini-C.

Expression parsing uses precedence climbing.  Compound assignments
(``+=`` etc.) and ``++``/``--`` are desugared into plain assignments at
parse time, so the later stages only see a small core language.
"""

import copy

from repro.minicc import ast_nodes as ast
from repro.minicc.errors import MiniCError
from repro.minicc.lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------- utilities
    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.current
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise MiniCError(f"expected {want!r}, got {token.value!r}", token.line)
        return self.advance()

    # ------------------------------------------------------ top level
    def parse(self):
        unit = ast.TranslationUnit()
        while not self.check("eof"):
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit):
        line = self.current.line
        base = self._parse_type_base()
        pointer = bool(self.accept("op", "*"))
        name = self.expect("ident").value
        if self.check("op", "("):
            unit.functions.append(
                self._parse_function(base, pointer, name, line)
            )
        else:
            unit.globals.extend(self._parse_global_tail(base, pointer, name, line))

    def _parse_type_base(self):
        self.accept("keyword", "const")
        self.accept("keyword", "unsigned")
        token = self.current
        if self.accept("keyword", "int"):
            return "int"
        if self.accept("keyword", "char"):
            return "char"
        if self.accept("keyword", "void"):
            return "void"
        raise MiniCError(f"expected a type, got {token.value!r}", token.line)

    def _parse_global_tail(self, base, pointer, first_name, line):
        """Parse the remainder of a global declaration (may declare
        several comma-separated names)."""
        out = []
        name = first_name
        while True:
            var_type, init = self._parse_declarator_tail(base, pointer)
            out.append(ast.GlobalVar(var_type, name, init, line))
            if not self.accept("op", ","):
                break
            pointer = bool(self.accept("op", "*"))
            name = self.expect("ident").value
        self.expect("op", ";")
        return out

    def _parse_declarator_tail(self, base, pointer):
        """``[N]`` / ``[]`` suffix plus optional ``= init``."""
        array_size = None
        sized_later = False
        if self.accept("op", "["):
            if self.check("op", "]"):
                sized_later = True  # int a[] = {...};
            else:
                array_size = self._parse_const_expr()
            self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            if self.check("op", "{"):
                init = self._parse_initializer_list()
            elif self.check("string"):
                token = self.advance()
                init = token.value
            else:
                init = self.parse_expression()
        if sized_later:
            if init is None:
                raise MiniCError("[] array needs an initializer", self.current.line)
            array_size = len(init) + 1 if isinstance(init, str) else len(init)
        var_type = ast.Type(base, is_pointer=pointer, array_size=array_size)
        return var_type, init

    def _parse_initializer_list(self):
        self.expect("op", "{")
        items = []
        if not self.check("op", "}"):
            while True:
                items.append(self.parse_expression())
                if not self.accept("op", ","):
                    break
        self.expect("op", "}")
        return items

    def _parse_const_expr(self):
        """A constant expression (folded at parse time for array sizes)."""
        expr = self.parse_expression()
        value = _fold(expr)
        if value is None:
            raise MiniCError("expected a constant expression", self.current.line)
        return value

    # ------------------------------------------------------- functions
    def _parse_function(self, base, pointer, name, line):
        return_type = ast.Type(base, is_pointer=pointer)
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.tokens[self.pos + 1].value == ")":
                self.advance()
            else:
                while True:
                    p_line = self.current.line
                    p_base = self._parse_type_base()
                    p_pointer = bool(self.accept("op", "*"))
                    p_name = self.expect("ident").value
                    if self.accept("op", "["):
                        # array parameters decay to pointers
                        if not self.check("op", "]"):
                            self._parse_const_expr()
                        self.expect("op", "]")
                        p_pointer = True
                    params.append(
                        ast.Param(ast.Type(p_base, is_pointer=p_pointer), p_name, p_line)
                    )
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.Function(return_type, name, params, body, line)

    # ------------------------------------------------------ statements
    def parse_block(self):
        line = self.expect("op", "{").line
        block = ast.Block(line=line)
        while not self.check("op", "}"):
            block.statements.append(self.parse_statement())
        self.expect("op", "}")
        return block

    def parse_statement(self):
        token = self.current
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if token.kind == "keyword":
            if token.value in ("int", "char", "const", "unsigned"):
                return self._parse_local_declaration()
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "do":
                return self._parse_do_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value, token.line)
            if token.value == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(token.line)
            if token.value == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(token.line)
        if self.accept("op", ";"):
            return ast.Block(line=token.line)  # empty statement
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, token.line)

    def _parse_local_declaration(self):
        line = self.current.line
        base = self._parse_type_base()
        declarations = []
        while True:
            pointer = bool(self.accept("op", "*"))
            name = self.expect("ident").value
            var_type, init = self._parse_declarator_tail(base, pointer)
            declarations.append(ast.Declaration(var_type, name, init, line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(declarations, line, scoped=False)

    def _parse_if(self):
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        other = None
        if self.accept("keyword", "else"):
            other = self.parse_statement()
        return ast.If(cond, then, other, line)

    def _parse_while(self):
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def _parse_do_while(self):
        line = self.expect("keyword", "do").line
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond, line)

    def _parse_for(self):
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self.check("keyword", "int") or self.check("keyword", "char"):
                init = self._parse_local_declaration()
            else:
                init = ast.ExprStmt(self.parse_expression(), line)
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line)

    # ----------------------------------------------------- expressions
    def parse_expression(self):
        return self._parse_assignment()

    def _parse_assignment(self):
        left = self._parse_conditional()
        token = self.current
        if self.accept("op", "="):
            value = self._parse_assignment()
            return ast.Assign(left, value, token.line)
        if token.kind == "op" and token.value in _COMPOUND_ASSIGN:
            self.advance()
            value = self._parse_assignment()
            # Desugar: a op= b  ->  a = a op b  (re-evaluating the lvalue
            # is safe in mini-C: no side effects inside lvalues beyond
            # the index expressions, which we duplicate structurally).
            op = token.value[:-1]
            return ast.Assign(
                left, ast.Binary(op, copy.deepcopy(left), value, token.line), token.line
            )
        return left

    def _parse_conditional(self):
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            line = self.current.line
            then = self.parse_expression()
            self.expect("op", ":")
            other = self._parse_conditional()
            return ast.Conditional(cond, then, other, line)
        return cond

    def _parse_binary(self, min_prec):
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.value)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(token.value, left, right, token.line)

    def _parse_unary(self):
        token = self.current
        if token.kind == "op" and token.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(token.value, operand, token.line)
        if token.kind == "op" and token.value == "+":
            self.advance()
            return self._parse_unary()
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            op = "+" if token.value == "++" else "-"
            return ast.Assign(
                target,
                ast.Binary(op, copy.deepcopy(target), ast.NumberLit(1, token.line)),
                token.line,
            )
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self.current
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, token.line)
            elif token.kind == "op" and token.value in ("++", "--"):
                # Postfix increment is only supported in statement
                # position (its value is discarded); desugar likewise.
                self.advance()
                op = "+" if token.value == "++" else "-"
                expr = ast.Assign(
                    expr,
                    ast.Binary(op, copy.deepcopy(expr), ast.NumberLit(1, token.line)),
                    token.line,
                )
            else:
                return expr

    def _parse_primary(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(token.value, token.line)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.value, token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(token.value, args, token.line)
            return ast.VarRef(token.value, token.line)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise MiniCError(f"unexpected token: {token.value!r}", token.line)


def _fold(expr):
    """Best-effort constant folding (array sizes, global initialisers)."""
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.Unary):
        value = _fold(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
        return None
    if isinstance(expr, ast.Binary):
        left, right = _fold(expr.left), _fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: int(left / right) if right else None,
                "%": lambda: left - int(left / right) * right if right else None,
                "<<": lambda: left << (right & 31),
                ">>": lambda: left >> (right & 31),
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse(source):
    """Parse mini-C ``source`` into a TranslationUnit AST."""
    return Parser(source).parse()
