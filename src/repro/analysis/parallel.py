"""Process-parallel experiment execution — thin caller of the scheduler.

The experiment drivers are serial (they share an in-process run cache).
For paper-scale averaging (``REPRO_FULL=1``: 10 traces x 10 benchmarks
x several configurations) that is hours of single-core simulation, so
:func:`prefetch_runs` pre-computes run results across worker processes
and seeds the cache; the drivers then find every run already cached.

Since the service refactor the execution core lives in
:mod:`repro.service.scheduler` — job planning against both cache
layers, trace pre-seeding, the bounded/backpressured process pool and
in-flight deduplication are the process-wide scheduler's.  This module
keeps the synchronous surface the engine, benchmarks and tests call
(bit-identical to the pre-service code) and translates the scheduler's
structured :class:`~repro.service.scheduler.ProgressEvent`\\ s into the
historical ``progress(done, total, label)`` callbacks.

Usage (the engine does this for you — ``repro.analysis.engine.
run_experiment`` enumerates a spec's grid and prefetches it; call
``prefetch_runs`` directly only for custom job lists)::

    from repro.analysis.parallel import experiment_jobs, prefetch_runs

    prefetch_runs(experiment_jobs("fig10", settings), workers=8)
    results = fig10_backup_schemes(settings)   # all cache hits

Jobs already present in the persistent disk cache
(:mod:`repro.analysis.runcache`) are loaded parent-side instead of
being dispatched, and fresh results are written back to it, so a
parallel prefetch seeds exactly the entries serial execution would.

Workers each pay a one-time benchmark-compilation cost (~10 s); jobs
are deterministic, so parallel and serial results are identical.
"""

from repro.analysis import experiments as exp
from repro.analysis.progress import report_progress
from repro.service.scheduler import (  # noqa: F401  (historical API)
    _execute,
    _job_kind,
    get_scheduler,
)


def prefetch_runs(jobs, workers=None, progress=None):
    """Run ``jobs`` (iterable of (benchmark, config, seed)) in parallel
    and seed the shared run cache.  Returns the number of fresh
    simulations actually executed (disk-cache hits don't count).

    ``progress(done, total, label)`` — optional callback fired after
    every completed job, in addition to the process-wide handler
    installed via :func:`repro.analysis.progress.set_progress_handler`.
    """

    def on_event(event):
        report_progress(event.done, event.total, event.text)
        if progress is not None:
            progress(event.done, event.total, event.text)

    return get_scheduler().run(jobs, workers=workers, on_event=on_event)


# ------------------------------------------------------------ job sets
# Job enumeration is owned by the experiment specs (one registry, one
# grid per experiment); everything here is a view over it.  The named
# helpers below are kept for callers of the historical API.
def experiment_jobs(experiment, settings=None):
    """The job list of a registered experiment (or a spec instance)."""
    from repro.analysis.engine import get_experiment

    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    return experiment.jobs(settings)


def fig10_jobs(settings=None, policies=("jit", "spendthrift", "watchdog")):
    """Every run Figure 10 (and by reuse Figure 11) needs."""
    return experiment_jobs(exp.fig10_spec(policies=policies), settings)


def fig12_jobs(settings=None, policies=("jit", "watchdog")):
    return experiment_jobs(exp.fig12_spec(policies=policies), settings)


def table3_jobs(settings=None):
    return experiment_jobs("table3", settings)


def all_headline_jobs(settings=None):
    """The union of every headline experiment's runs."""
    return fig10_jobs(settings) + fig12_jobs(settings) + table3_jobs(settings)
