"""Constraint derivation for the intermittent persist model.

A program execution is abstracted as a sequence of events in program
order: :class:`Access` (load or store to a symbolic NVM address) and
:class:`Backup` (checkpoint invocation).  From it the model derives:

* per *intermittent section* (the span between consecutive backups),
  the read/write dominance of every accessed address (Section 3.2);
* the set of happens-before :class:`Constraint` objects among persist
  operations (Table 1), under either in-place persistence or NVM
  renaming (Section 3.6).

Persist operations are identified by event index: ``("st", i)`` for the
store at event ``i`` and ``("backup", i)`` for the backup at ``i``.
"""

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True)
class Access:
    """A load (``is_write=False``) or store to symbolic address ``addr``."""

    addr: str
    is_write: bool


@dataclass(frozen=True)
class Backup:
    """A backup invocation."""


class Relation(str, Enum):
    """Table 1's ordering relations."""

    SPO = "spo"  # store -> store, same address, program order
    BPO = "bpo"  # backup -> backup, invocation order
    RFPO = "rfpo"  # store -> next backup (data progress)
    IRPO = "irpo"  # next backup -> store (idempotent re-execution)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"Relation.{self.name}"


@dataclass(frozen=True)
class Constraint:
    """``first`` must persist before ``second`` (happens-before edge)."""

    first: tuple
    second: tuple
    relation: Relation

    def __str__(self):
        return f"{self.first} --{self.relation.value}--> {self.second}"


def build_trace(*steps):
    """Convenience: build an event list from compact step descriptors.

    ``"LD A"`` / ``"ST A"`` / ``"BACKUP"`` strings, e.g. the paper's toy
    program of Figure 2::

        build_trace("LD A", "ST A", "ST B", "LD C", "ST C", "LD A")
    """
    events = []
    for step in steps:
        parts = step.split()
        if parts[0].upper() == "BACKUP":
            events.append(Backup())
        elif parts[0].upper() == "LD":
            events.append(Access(parts[1], is_write=False))
        elif parts[0].upper() == "ST":
            events.append(Access(parts[1], is_write=True))
        else:
            raise ValueError(f"unknown step: {step!r}")
    return events


class PersistModel:
    """Derives dominance and ordering constraints from an event trace.

    ``renaming=True`` models NvMR: every store persists to a fresh
    location, which (a) makes every section write-dominated, (b) removes
    same-address ``spo`` edges (different physical locations), and
    (c) leaves only the *last* store to an address in each section
    subject to ``rfpo`` — earlier renamed values need not persist at all
    (Figure 4: "only the stores that immediately precede backups must be
    persisted").
    """

    def __init__(self, events, renaming=False):
        self.events = list(events)
        self.renaming = renaming
        self._sections = self._split_sections()

    # ------------------------------------------------------- sections
    def _split_sections(self):
        """Sections as (start_index, end_index_exclusive, backup_index).

        ``backup_index`` is the index of the backup event that *ends*
        the section, or None for the final open section.
        """
        sections = []
        start = 0
        for index, event in enumerate(self.events):
            if isinstance(event, Backup):
                sections.append((start, index, index))
                start = index + 1
        sections.append((start, len(self.events), None))
        return sections

    def backup_indices(self):
        return [i for i, e in enumerate(self.events) if isinstance(e, Backup)]

    @property
    def sections(self):
        """``(start, end, backup_index)`` spans between backups."""
        return list(self._sections)

    # ------------------------------------------------------ dominance
    def dominance(self):
        """Per section: ``{addr: "R" | "W"}`` by first access (Section 3.2).

        With renaming every address is write-dominated by construction
        (the store targets a fresh location never read before).
        """
        out = []
        for start, end, _ in self._sections:
            first_access = {}
            for index in range(start, end):
                event = self.events[index]
                if isinstance(event, Access) and event.addr not in first_access:
                    first_access[event.addr] = "W" if event.is_write else "R"
            if self.renaming:
                first_access = {addr: "W" for addr in first_access}
            out.append(first_access)
        return out

    # ----------------------------------------------------- constraints
    def constraints(self):
        """The full happens-before constraint set (Table 1)."""
        out = set()
        out |= self._bpo()
        out |= self._spo()
        out |= self._rfpo()
        out |= self._irpo()
        return out

    def _bpo(self):
        backups = self.backup_indices()
        return {
            Constraint(("backup", a), ("backup", b), Relation.BPO)
            for a, b in zip(backups, backups[1:])
        }

    def _store_indices(self, addr=None):
        return [
            i
            for i, e in enumerate(self.events)
            if isinstance(e, Access) and e.is_write and (addr is None or e.addr == addr)
        ]

    def _spo(self):
        """Same-address stores persist in program order — unless renamed
        (each persist targets a distinct physical location)."""
        if self.renaming:
            return set()
        out = set()
        addrs = {e.addr for e in self.events if isinstance(e, Access) and e.is_write}
        for addr in addrs:
            stores = self._store_indices(addr)
            out |= {
                Constraint(("st", a), ("st", b), Relation.SPO)
                for a, b in zip(stores, stores[1:])
            }
        return out

    def _rfpo(self):
        """Data progress: a store persists before the next backup.

        Without renaming, every store carries the edge (its location is
        the one the post-failure load would read).  With renaming, only
        the *last* store to each address within a section must persist
        — earlier values are dead the moment they are overwritten in
        the (volatile) cache, and their renamed locations are never the
        committed mapping.
        """
        out = set()
        for start, end, backup_index in self._sections:
            if backup_index is None:
                continue
            last_store = {}
            for index in range(start, end):
                event = self.events[index]
                if isinstance(event, Access) and event.is_write:
                    last_store[event.addr] = index
                    if not self.renaming:
                        out.add(
                            Constraint(
                                ("st", index),
                                ("backup", backup_index),
                                Relation.RFPO,
                            )
                        )
            if self.renaming:
                out |= {
                    Constraint(("st", index), ("backup", backup_index), Relation.RFPO)
                    for index in last_store.values()
                }
        return out

    def _irpo(self):
        """Idempotency: a store to a *read-dominated* address must not
        persist until the section's backup has persisted (Figure 3a).
        Renaming removes the relation entirely (Figure 4)."""
        if self.renaming:
            return set()
        out = set()
        dominance = self.dominance()
        for section, (start, end, backup_index) in zip(dominance, self._sections):
            if backup_index is None:
                continue
            for index in range(start, end):
                event = self.events[index]
                if (
                    isinstance(event, Access)
                    and event.is_write
                    and section.get(event.addr) == "R"
                ):
                    out.add(
                        Constraint(
                            ("backup", backup_index),
                            ("st", index),
                            Relation.IRPO,
                        )
                    )
        return out

    # ------------------------------------------------------ atomicity
    def atomic_groups(self):
        """Stores that must persist atomically with their section backup.

        These are exactly the persists carrying both an ``rfpo`` edge
        (before the backup) and an ``irpo`` edge (not until the backup)
        — the cyclic pattern of Figure 3a.  Returns
        ``{backup_index: [store indices]}``.
        """
        constraints = self.constraints()
        before = {
            (c.first, c.second)
            for c in constraints
            if c.relation == Relation.RFPO
        }
        groups = {}
        for constraint in constraints:
            if constraint.relation != Relation.IRPO:
                continue
            backup_op, store_op = constraint.first, constraint.second
            if (store_op, backup_op) in before:
                groups.setdefault(backup_op[1], []).append(store_op[1])
        return {k: sorted(v) for k, v in groups.items()}

    def persist_required(self):
        """Store events whose value must reach NVM at all.

        Under renaming only the last store per (section, address) must
        persist — the paper's "theoretical maximum efficiency".
        """
        return sorted(
            c.first[1] for c in self.constraints() if c.relation == Relation.RFPO
        )
