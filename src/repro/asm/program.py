"""Assembled program images and the flash memory layout.

The layout mirrors a small MCU with a 2 MB flash (Table 2 of the paper):
code at the bottom, static data above it, a stack region, and a
compiler-reserved renaming region for NvMR near the top.  All data
addresses (globals *and* stack) are NVM addresses accessed through the
volatile write-back cache, matching the paper's architecture model.
"""

from dataclasses import dataclass, field

#: Base address of the code section.
CODE_BASE = 0x0000_0000
#: Base address of static data (``.data``).
DATA_BASE = 0x0002_0000
#: Initial stack pointer; the stack grows down from here.
STACK_TOP = 0x0006_0000
#: Base of the compiler-reserved NVM region used by NvMR for renaming.
RESERVED_BASE = 0x0010_0000
#: Total flash size (2 MB).
FLASH_SIZE = 0x0020_0000

WORD = 4


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space layout used by assembled programs and the platform."""

    code_base: int = CODE_BASE
    data_base: int = DATA_BASE
    stack_top: int = STACK_TOP
    reserved_base: int = RESERVED_BASE
    flash_size: int = FLASH_SIZE

    def reserved_mappings(self, count, block_size):
        """Return ``count`` block-aligned addresses from the reserved region.

        These populate NvMR's free list.  Raises :class:`ValueError` if
        the region cannot hold them.
        """
        top = self.reserved_base + count * block_size
        if top > self.flash_size:
            raise ValueError(
                f"reserved region overflow: need {count} blocks of {block_size}B"
            )
        return [self.reserved_base + i * block_size for i in range(count)]


@dataclass
class Program:
    """A fully assembled TinyRISC program.

    Attributes
    ----------
    instructions:
        Decoded instructions in code order; instruction ``i`` lives at
        ``code_base + 4*i``.
    data:
        Initialised data image as ``bytes`` placed at ``data_base``.
    symbols:
        Label name -> absolute address (both text and data labels).
    entry:
        Absolute address of the first instruction to execute.
    source_lines:
        For each instruction, the 1-based source line it came from
        (parallel to ``instructions``); useful in error messages.
    layout:
        The :class:`MemoryLayout` the program was assembled against.
    """

    instructions: list
    data: bytes
    symbols: dict
    entry: int
    source_lines: list = field(default_factory=list)
    layout: MemoryLayout = field(default_factory=MemoryLayout)

    @property
    def code_size(self):
        """Code footprint in bytes."""
        return len(self.instructions) * WORD

    @property
    def data_end(self):
        """First address past the initialised data image."""
        return self.layout.data_base + len(self.data)

    def symbol(self, name):
        """Return the address of label ``name`` (KeyError if undefined)."""
        return self.symbols[name]

    def instruction_index(self, pc):
        """Map an absolute PC to an index into :attr:`instructions`."""
        offset = pc - self.layout.code_base
        if offset % WORD:
            raise ValueError(f"misaligned pc: {pc:#x}")
        index = offset // WORD
        if not 0 <= index < len(self.instructions):
            raise ValueError(f"pc outside code section: {pc:#x}")
        return index
