"""Read/write-dominance tracking: the global and local bloom filters.

The paper (Section 4.1) tracks dominance at two granularities:

* The **LBF** (local bloom filter) holds a 2-bit state per *word* of a
  cache block: Unknown (00), Read-dominated (01) or Write-dominated
  (10).  The block's *composite state* is the OR of the LSBs of the word
  states — 1 iff any word is read-dominated.
* The **GBF** (global bloom filter) logs the composite state of blocks
  when they are *evicted*, so that a later refetch within the same
  intermittent section remembers that the block was read-dominated.
  With 8 one-bit entries it is tiny and aliases heavily; aliasing only
  produces false "read-dominated" answers, which is conservative (extra
  renames/backups, never a correctness loss).

Both filters are reset on every backup — dominance is a property of the
current intermittent code section only.
"""


class WordState:
    """Per-word LBF states (values match the paper's encoding)."""

    UNKNOWN = 0
    READ = 1  # read-dominated: 01
    WRITE = 2  # write-dominated: 10


class LocalBloomFilter:
    """Per-cache-line word dominance states (4 two-bit entries)."""

    __slots__ = ("states",)

    def __init__(self, words_per_block):
        self.states = [WordState.UNKNOWN] * words_per_block

    def on_read(self, word_index):
        """First access wins: an Unknown word read becomes Read-dominated."""
        if self.states[word_index] == WordState.UNKNOWN:
            self.states[word_index] = WordState.READ

    def on_write(self, word_index):
        """First access wins: an Unknown word written becomes Write-dominated."""
        if self.states[word_index] == WordState.UNKNOWN:
            self.states[word_index] = WordState.WRITE

    def mark_all_read(self):
        """Conservatively mark every word read-dominated (GBF hit on refetch)."""
        self.states = [WordState.READ] * len(self.states)

    def reset(self):
        self.states = [WordState.UNKNOWN] * len(self.states)

    @property
    def composite(self):
        """1 iff any constituent word is read-dominated (OR of state LSBs)."""
        for state in self.states:
            if state & 1:
                return 1
        return 0


class GlobalBloomFilter:
    """A tiny bloom filter logging read-dominated *evicted* blocks.

    ``num_bits`` one-bit entries, single multiply-shift hash.  A set bit
    means "some evicted block hashing here was read-dominated"; lookups
    may alias (false positives), which is safe-conservative.
    """

    _KNUTH = 2654435761

    def __init__(self, num_bits=8):
        if num_bits <= 0:
            raise ValueError("GBF needs at least one bit")
        self.num_bits = num_bits
        self.bits = 0
        self.insertions = 0

    def _index(self, block_addr):
        return ((block_addr * self._KNUTH) >> 16) % self.num_bits

    def log_eviction(self, block_addr, composite):
        """Record the composite state of an evicted block."""
        if composite:
            self.bits |= 1 << self._index(block_addr)
            self.insertions += 1

    def was_read_dominated(self, block_addr):
        """True if the block *may* have been evicted read-dominated."""
        return bool(self.bits & (1 << self._index(block_addr)))

    def reset(self):
        """Clear on backup: a new intermittent section begins."""
        self.bits = 0
