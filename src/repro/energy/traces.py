"""Synthetic energy-harvesting traces.

The paper samples voltage traces recorded from real harvesters
(BatterylessSim [28]) at 1 kHz and averages every result over 10
different traces.  Those recordings are not available offline, so we
substitute seeded synthetic traces that preserve what the experiments
actually consume from them:

* per-active-period variation in the usable energy budget (harvesting
  conditions differ every time the device wakes up), and
* an observable *environment voltage* correlated with that budget —
  the input feature the Spendthrift neural predictor learns from.

Each trace is a deterministic pseudo-random process: period ``k`` draws
an environment level ``env_k`` (slowly wandering, harvester-like), and
the usable energy budget is ``capacity * (lo + (hi - lo) * env_k)`` plus
small observation-independent noise.  Ten default traces (seeds 0..9)
mirror the paper's averaging.
"""

from dataclasses import dataclass

import numpy as np

#: Budget range as a fraction of the full-charge capacity.
BUDGET_LO = 0.70
BUDGET_HI = 1.00
#: Multiplicative noise not explained by the observable environment
#: (keeps a perfect predictor from being possible, as in real traces).
NOISE_STD = 0.015


@dataclass
class PeriodConditions:
    """Harvesting conditions for one active period."""

    env_voltage: float  # observable, normalised 0..1
    budget_fraction: float  # actual usable-energy fraction of capacity
    recharge_cycles: int  # off-time before the period, in cycle units


class HarvestTrace:
    """One synthetic harvested-energy trace (seeded, deterministic)."""

    def __init__(self, seed):
        self.seed = seed
        self._rng = np.random.default_rng(seed + 0x5EED)
        self._env = float(self._rng.uniform(0.2, 0.8))

    def next_period(self):
        """Advance to the next active period and return its conditions."""
        rng = self._rng
        # The environment level wanders slowly (cloud cover / RF field
        # strength changing between wake-ups) and reflects bounded walks.
        self._env += float(rng.normal(0.0, 0.08))
        self._env = min(1.0, max(0.0, self._env))
        noise = float(rng.normal(0.0, NOISE_STD))
        budget = BUDGET_LO + (BUDGET_HI - BUDGET_LO) * self._env + noise
        budget = min(BUDGET_HI, max(0.5, budget))
        # Weak harvest -> longer recharge before the next period.
        recharge = int(20_000 + 80_000 * (1.0 - self._env) + rng.integers(0, 5_000))
        return PeriodConditions(
            env_voltage=self._env, budget_fraction=budget, recharge_cycles=recharge
        )


def default_traces(count=10, base_seed=0):
    """The standard trace set: ``count`` seeded traces (paper uses 10)."""
    return [HarvestTrace(base_seed + i) for i in range(count)]
