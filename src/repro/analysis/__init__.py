"""Experiment drivers and reporting for the paper's tables and figures.

Each ``fig*``/``table*`` function in :mod:`repro.analysis.experiments`
regenerates one result from the paper's evaluation (Section 6) and
returns plain data structures; :mod:`repro.analysis.reporting` renders
them as text tables like the ones in EXPERIMENTS.md.
"""

from repro.analysis.experiments import (
    ExperimentSettings,
    ablation_cache_size,
    ablation_free_list_discipline,
    ablation_gbf_bits,
    cached_run,
    clear_run_cache,
    extension_nvm_technology,
    extension_taxonomy,
    fig10_backup_schemes,
    fig10_with_variance,
    fig11_energy_breakdown,
    fig12_hoop,
    fig13a_mtc_size,
    fig13b_mtc_assoc,
    fig13c_map_table,
    fig13d_capacitor,
    fig14_reclaim,
    footnote6_original_clank,
    overheads_study,
    table2_configuration,
    table3_violations,
    table4_hoop_configuration,
)
from repro.analysis.progress import report_progress, set_progress_handler
from repro.analysis.report import generate_report, write_report
from repro.analysis.timeline import render_timeline
from repro.analysis.wear import WearProfile, gini_coefficient, wear_comparison, wear_profile
from repro.analysis.reporting import (
    format_breakdowns,
    format_mapping,
    format_matrix,
    format_series,
)

__all__ = [
    "ExperimentSettings",
    "ablation_cache_size",
    "ablation_free_list_discipline",
    "ablation_gbf_bits",
    "cached_run",
    "clear_run_cache",
    "extension_nvm_technology",
    "extension_taxonomy",
    "fig10_backup_schemes",
    "fig10_with_variance",
    "fig11_energy_breakdown",
    "fig12_hoop",
    "fig13a_mtc_size",
    "fig13b_mtc_assoc",
    "fig13c_map_table",
    "fig13d_capacitor",
    "fig14_reclaim",
    "format_breakdowns",
    "format_mapping",
    "format_matrix",
    "format_series",
    "footnote6_original_clank",
    "generate_report",
    "render_timeline",
    "gini_coefficient",
    "overheads_study",
    "report_progress",
    "set_progress_handler",
    "table2_configuration",
    "table3_violations",
    "table4_hoop_configuration",
    "wear_comparison",
    "write_report",
    "wear_profile",
    "WearProfile",
]
