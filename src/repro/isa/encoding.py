"""Binary encoding, decoding and disassembly of TinyRISC instructions.

Encoding layout (32-bit words):

========================  =============================================
Format                    Fields (msb .. lsb)
========================  =============================================
ALU reg / LDRR / STRR     op[31:26] rd[25:22] ra[21:18] rb[17:14] 0
ALU imm / LDR / STR       op[31:26] rd[25:22] ra[21:18] imm14[13:0]
MOVW / MOVT               op[31:26] rd[25:22] 0[21:16] imm16[15:0]
MOV / MVN / BX            op[31:26] rd[25:22] ra[21:18] 0
CMP                       op[31:26] 0 ra[21:18] rb[17:14] 0
CMPI                      op[31:26] 0 ra[21:18] imm14[13:0]
B<cond> / BL              op[31:26] imm26[25:0] (signed word offset)
NOP / HALT                op[31:26] 0
========================  =============================================

Immediates are two's-complement within their field except MOVW/MOVT,
whose 16-bit literal is unsigned.
"""

from repro.isa.errors import EncodingError
from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    BRANCH_OPS,
    Instruction,
    Opcode,
)
from repro.isa.registers import reg_name

IMM14_MIN = -(1 << 13)
IMM14_MAX = (1 << 13) - 1
IMM26_MIN = -(1 << 25)
IMM26_MAX = (1 << 25) - 1

_REG3_OPS = ALU_REG_OPS | {Opcode.LDRR, Opcode.LDRBR, Opcode.STRR, Opcode.STRBR}
_IMM14_OPS = ALU_IMM_OPS | {Opcode.LDR, Opcode.LDRB, Opcode.STR, Opcode.STRB}
_JUMP_OPS = BRANCH_OPS | {Opcode.BL}


def _check_reg(value, field):
    if not 0 <= value < 16:
        raise EncodingError(f"{field} out of range: {value}")
    return value


def _field_imm(value, lo, hi, bits):
    if not lo <= value <= hi:
        raise EncodingError(f"immediate {value} does not fit {bits} signed bits")
    return value & ((1 << bits) - 1)


def encode(instr):
    """Encode a decoded :class:`Instruction` into its 32-bit word."""
    op = instr.op
    word = int(op) << 26
    if op in _REG3_OPS:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _check_reg(instr.rb, "rb") << 14
    elif op in _IMM14_OPS:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _field_imm(instr.imm, IMM14_MIN, IMM14_MAX, 14)
    elif op in (Opcode.MOVW, Opcode.MOVT):
        word |= _check_reg(instr.rd, "rd") << 22
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError(f"MOVW/MOVT literal out of range: {instr.imm}")
        word |= instr.imm
    elif op in (Opcode.MOV, Opcode.MVN):
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
    elif op is Opcode.BX:
        word |= _check_reg(instr.ra, "ra") << 18
    elif op is Opcode.CMP:
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _check_reg(instr.rb, "rb") << 14
    elif op is Opcode.CMPI:
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _field_imm(instr.imm, IMM14_MIN, IMM14_MAX, 14)
    elif op in _JUMP_OPS:
        word |= _field_imm(instr.imm, IMM26_MIN, IMM26_MAX, 26)
    elif op in (Opcode.NOP, Opcode.HALT):
        pass
    else:  # pragma: no cover - exhaustive over Opcode
        raise EncodingError(f"unhandled opcode: {op}")
    return word


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word}")
    op_num = word >> 26
    try:
        op = Opcode(op_num)
    except ValueError:
        raise EncodingError(f"unknown opcode field: {op_num}") from None
    rd = (word >> 22) & 0xF
    ra = (word >> 18) & 0xF
    rb = (word >> 14) & 0xF
    if op in _REG3_OPS:
        return Instruction(op, rd=rd, ra=ra, rb=rb)
    if op in _IMM14_OPS:
        return Instruction(op, rd=rd, ra=ra, imm=_sext(word, 14))
    if op in (Opcode.MOVW, Opcode.MOVT):
        return Instruction(op, rd=rd, imm=word & 0xFFFF)
    if op in (Opcode.MOV, Opcode.MVN):
        return Instruction(op, rd=rd, ra=ra)
    if op is Opcode.BX:
        return Instruction(op, ra=ra)
    if op is Opcode.CMP:
        return Instruction(op, ra=ra, rb=rb)
    if op is Opcode.CMPI:
        return Instruction(op, ra=ra, imm=_sext(word, 14))
    if op in _JUMP_OPS:
        return Instruction(op, imm=_sext(word, 26))
    return Instruction(op)


#: Opcode -> assembler mnemonic where they differ (the assembler
#: auto-selects immediate/register forms from the operand shapes, so
#: disassembly must emit the canonical base mnemonic to round-trip).
_MNEMONICS = {op: op.name.lower()[:-1] for op in ALU_IMM_OPS}  # addi -> add
_MNEMONICS.update(
    {
        Opcode.CMPI: "cmp",
        Opcode.LDRR: "ldr",
        Opcode.LDRBR: "ldrb",
        Opcode.STRR: "str",
        Opcode.STRBR: "strb",
    }
)


def disassemble(instr):
    """Render an :class:`Instruction` as canonical assembly text.

    The output reassembles to the identical instruction (property-
    tested), except PC-relative branches, whose targets are rendered as
    relative offsets (``. + n``) since a lone instruction has no label
    context.
    """
    op = instr.op
    name = _MNEMONICS.get(op, op.name.lower())
    rd, ra, rb = instr.rd, instr.ra, instr.rb
    if op in ALU_REG_OPS:
        return f"{name} {reg_name(rd)}, {reg_name(ra)}, {reg_name(rb)}"
    if op in ALU_IMM_OPS:
        return f"{name} {reg_name(rd)}, {reg_name(ra)}, #{instr.imm}"
    if op in (Opcode.MOV, Opcode.MVN):
        return f"{name} {reg_name(rd)}, {reg_name(ra)}"
    if op in (Opcode.MOVW, Opcode.MOVT):
        return f"{name} {reg_name(rd)}, #{instr.imm}"
    if op is Opcode.CMP:
        return f"{name} {reg_name(ra)}, {reg_name(rb)}"
    if op is Opcode.CMPI:
        return f"{name} {reg_name(ra)}, #{instr.imm}"
    if op in (Opcode.LDR, Opcode.LDRB, Opcode.STR, Opcode.STRB):
        return f"{name} {reg_name(rd)}, [{reg_name(ra)}, #{instr.imm}]"
    if op in (Opcode.LDRR, Opcode.LDRBR, Opcode.STRR, Opcode.STRBR):
        return f"{name} {reg_name(rd)}, [{reg_name(ra)}, {reg_name(rb)}]"
    if op in BRANCH_OPS or op is Opcode.BL:
        return f"{name} . + {instr.imm}"
    if op is Opcode.BX:
        return f"{name} {reg_name(ra)}"
    return name
